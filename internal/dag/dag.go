// Package dag builds and analyzes workflow graphs: the directed acyclic
// graphs of derivations that the derivation facet executes (§5.4). A
// node is one simple-transformation derivation; an edge exists from the
// producer of a dataset to each of its consumers.
//
// The package provides validation (acyclicity, single producers),
// topological ordering, the ready-frontier computation that drives
// DAGman-style dispatch, and structural metrics (levels, width,
// critical path) used by the estimator and the experiment harness.
package dag

import (
	"fmt"
	"sort"
	"sync"

	"chimera/internal/schema"
)

// Node is one executable unit of a workflow.
type Node struct {
	// ID equals the derivation's canonical signature.
	ID string
	// Derivation is the underlying recipe.
	Derivation schema.Derivation
	// Inputs and Outputs are the consumed/produced dataset names.
	Inputs  []string
	Outputs []string

	preds map[*Node]bool
	succs map[*Node]bool
}

// Preds returns the node's predecessors sorted by ID.
func (n *Node) Preds() []*Node { return sortedNodes(n.preds) }

// Succs returns the node's successors sorted by ID.
func (n *Node) Succs() []*Node { return sortedNodes(n.succs) }

// NumPreds returns the predecessor count without sorting — the
// indegree a frontier scheduler seeds its counters from.
func (n *Node) NumPreds() int { return len(n.preds) }

// NumSuccs returns the successor count without sorting.
func (n *Node) NumSuccs() int { return len(n.succs) }

func sortedNodes(m map[*Node]bool) []*Node {
	out := make([]*Node, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Graph is a validated workflow DAG.
type Graph struct {
	nodes    map[string]*Node
	producer map[string]*Node // dataset -> producing node
	// ExternalInputs are datasets consumed by some node but produced by
	// none: they must be materialized before the workflow runs.
	ExternalInputs []string

	// topo caches the topological order computed during Build; the
	// graph is immutable afterwards, so every structural metric
	// (Levels, Width, CriticalPath, Stats) derives from this one order
	// instead of re-running Kahn's algorithm per call.
	topo []*Node
	// levels caches the depth partition, computed from topo on first
	// use.
	levelsOnce sync.Once
	levels     [][]*Node
}

// Build constructs a graph from derivations; each derivation must be of
// a simple transformation resolvable through resolve (compound
// derivations are expanded by the caller first). Build validates that
// each dataset has at most one producer within the graph and that the
// result is acyclic.
func Build(dvs []schema.Derivation, resolve schema.Resolver) (*Graph, error) {
	g := &Graph{
		nodes:    make(map[string]*Node, len(dvs)),
		producer: make(map[string]*Node),
	}
	for _, dv := range dvs {
		dv = dv.Canonicalize()
		if _, ok := g.nodes[dv.ID]; ok {
			// The same computation listed twice collapses to one node.
			continue
		}
		tr, err := resolve(dv.TR)
		if err != nil {
			return nil, fmt.Errorf("dag: node %s: %w", dv.ID, err)
		}
		if tr.Kind != schema.Simple {
			return nil, fmt.Errorf("dag: node %s uses compound transformation %s; expand it first", dv.ID, tr.Ref())
		}
		n := &Node{
			ID:         dv.ID,
			Derivation: dv,
			Inputs:     dv.Inputs(tr),
			Outputs:    dv.Outputs(tr),
			preds:      make(map[*Node]bool),
			succs:      make(map[*Node]bool),
		}
		g.nodes[dv.ID] = n
		for _, out := range n.Outputs {
			if other, ok := g.producer[out]; ok {
				return nil, fmt.Errorf("dag: dataset %q produced by both %s and %s", out, other.ID, n.ID)
			}
			g.producer[out] = n
		}
	}
	// Wire edges and find external inputs.
	external := make(map[string]bool)
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			if p, ok := g.producer[in]; ok {
				if p == n {
					return nil, fmt.Errorf("dag: node %s consumes its own output %q", n.ID, in)
				}
				n.preds[p] = true
				p.succs[n] = true
			} else {
				external[in] = true
			}
		}
	}
	for ds := range external {
		g.ExternalInputs = append(g.ExternalInputs, ds)
	}
	sort.Strings(g.ExternalInputs)
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	g.topo = order
	return g, nil
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns a node by derivation ID.
func (g *Graph) Node(id string) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Producer returns the node producing a dataset within the graph.
func (g *Graph) Producer(dataset string) (*Node, bool) {
	n, ok := g.producer[dataset]
	return n, ok
}

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Roots returns the nodes with no predecessors.
func (g *Graph) Roots() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if len(n.preds) == 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Ready returns the nodes whose predecessors are all in done and that
// are not themselves in done — the dispatch frontier.
func (g *Graph) Ready(done map[string]bool) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if done[n.ID] {
			continue
		}
		ok := true
		for p := range n.preds {
			if !done[p.ID] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TopoOrder returns the nodes in a topological order (stable: among
// candidates, smallest ID first). It reports a cycle as an error.
// Graphs built by Build serve the order cached at construction (the
// returned slice is the caller's to mutate).
func (g *Graph) TopoOrder() ([]*Node, error) {
	if g.topo != nil {
		out := make([]*Node, len(g.topo))
		copy(out, g.topo)
		return out, nil
	}
	return g.topoOrder()
}

// topoOrder runs Kahn's algorithm from scratch.
func (g *Graph) topoOrder() ([]*Node, error) {
	indeg := make(map[*Node]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n] = len(n.preds)
	}
	var frontier []*Node
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			frontier = append(frontier, n)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].ID < frontier[j].ID })
	var order []*Node
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, n)
		var unlocked []*Node
		for s := range n.succs {
			indeg[s]--
			if indeg[s] == 0 {
				unlocked = append(unlocked, s)
			}
		}
		sort.Slice(unlocked, func(i, j int) bool { return unlocked[i].ID < unlocked[j].ID })
		frontier = append(frontier, unlocked...)
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("dag: cycle among %d nodes", len(g.nodes)-len(order))
	}
	return order, nil
}

// Levels partitions nodes by depth: level 0 holds the roots, level k
// the nodes whose longest predecessor chain has length k. The
// partition is computed once per graph; each call returns a fresh
// two-level copy the caller may mutate.
func (g *Graph) Levels() [][]*Node {
	g.levelsOnce.Do(func() { g.levels = g.computeLevels() })
	if g.levels == nil {
		return nil
	}
	out := make([][]*Node, len(g.levels))
	for i, l := range g.levels {
		out[i] = append([]*Node(nil), l...)
	}
	return out
}

func (g *Graph) computeLevels() [][]*Node {
	order, err := g.cachedOrder()
	if err != nil {
		return nil
	}
	depth := make(map[*Node]int, len(order))
	maxDepth := 0
	for _, n := range order {
		d := 0
		for p := range n.preds {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[n] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]*Node, maxDepth+1)
	for _, n := range order {
		levels[depth[n]] = append(levels[depth[n]], n)
	}
	return levels
}

// cachedOrder returns the Build-time topological order without
// copying, recomputing only for graphs not made by Build.
func (g *Graph) cachedOrder() ([]*Node, error) {
	if g.topo != nil {
		return g.topo, nil
	}
	return g.topoOrder()
}

// Width returns the size of the largest level — an upper bound on
// useful parallelism for level-synchronized execution.
func (g *Graph) Width() int {
	g.levelsOnce.Do(func() { g.levels = g.computeLevels() })
	w := 0
	for _, level := range g.levels {
		if len(level) > w {
			w = len(level)
		}
	}
	return w
}

// CriticalPath returns the maximum, over all sink nodes, of the total
// cost along predecessor chains, with per-node costs from the given
// function. With unit costs it is the DAG depth in nodes.
func (g *Graph) CriticalPath(cost func(*Node) float64) float64 {
	order, err := g.cachedOrder()
	if err != nil {
		return 0
	}
	best := make(map[*Node]float64, len(order))
	max := 0.0
	for _, n := range order {
		c := 0.0
		for p := range n.preds {
			if best[p] > c {
				c = best[p]
			}
		}
		c += cost(n)
		best[n] = c
		if c > max {
			max = c
		}
	}
	return max
}

// Stats summarizes the graph's shape.
type Stats struct {
	Nodes, Edges   int
	Depth, Width   int
	ExternalInputs int
	Sinks          int
}

// Stats computes structural statistics.
func (g *Graph) Stats() Stats {
	st := Stats{Nodes: len(g.nodes), ExternalInputs: len(g.ExternalInputs)}
	for _, n := range g.nodes {
		st.Edges += len(n.succs)
		if len(n.succs) == 0 {
			st.Sinks++
		}
	}
	g.levelsOnce.Do(func() { g.levels = g.computeLevels() })
	st.Depth = len(g.levels)
	for _, l := range g.levels {
		if len(l) > st.Width {
			st.Width = len(l)
		}
	}
	return st
}
