package dag

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"chimera/internal/schema"
)

func tr1in1out() schema.Transformation {
	return schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/bin/t",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		}}
}

func tr2in1out() schema.Transformation {
	return schema.Transformation{Name: "m", Kind: schema.Simple, Exec: "/bin/m",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i1", Direction: schema.In},
			{Name: "i2", Direction: schema.In},
		}}
}

func dv1(in, out string) schema.Derivation {
	return schema.Derivation{TR: "t", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", out),
		"i": schema.DatasetActual("input", in),
	}}
}

func dv2(in1, in2, out string) schema.Derivation {
	return schema.Derivation{TR: "m", Params: map[string]schema.Actual{
		"o":  schema.DatasetActual("output", out),
		"i1": schema.DatasetActual("input", in1),
		"i2": schema.DatasetActual("input", in2),
	}}
}

func resolver() schema.Resolver { return schema.MapResolver(tr1in1out(), tr2in1out()) }

// diamond builds: a -> b, a -> c, (b,c) -> d.
func diamond(t *testing.T) (*Graph, map[string]string) {
	t.Helper()
	dvs := []schema.Derivation{dv1("a", "b"), dv1("a", "c"), dv2("b", "c", "d")}
	g, err := Build(dvs, resolver())
	if err != nil {
		t.Fatal(err)
	}
	byOut := make(map[string]string)
	for _, n := range g.Nodes() {
		byOut[n.Outputs[0]] = n.ID
	}
	return g, byOut
}

func TestBuildDiamond(t *testing.T) {
	g, byOut := diamond(t)
	if g.Len() != 3 {
		t.Fatalf("len=%d", g.Len())
	}
	if strings.Join(g.ExternalInputs, ",") != "a" {
		t.Errorf("external inputs: %v", g.ExternalInputs)
	}
	d, _ := g.Node(byOut["d"])
	if len(d.Preds()) != 2 || len(d.Succs()) != 0 {
		t.Errorf("d edges: %d preds %d succs", len(d.Preds()), len(d.Succs()))
	}
	b, _ := g.Node(byOut["b"])
	if len(b.Preds()) != 0 || len(b.Succs()) != 1 {
		t.Errorf("b edges")
	}
	if p, ok := g.Producer("d"); !ok || p.ID != byOut["d"] {
		t.Error("producer lookup")
	}
	roots := g.Roots()
	if len(roots) != 2 {
		t.Errorf("roots: %d", len(roots))
	}
}

func TestDuplicateDerivationsCollapse(t *testing.T) {
	g, err := Build([]schema.Derivation{dv1("a", "b"), dv1("a", "b")}, resolver())
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("len=%d", g.Len())
	}
}

func TestBuildErrors(t *testing.T) {
	// Two producers of one dataset.
	if _, err := Build([]schema.Derivation{dv1("a", "x"), dv1("b", "x")}, resolver()); err == nil {
		t.Error("double producer accepted")
	}
	// Compound not allowed.
	comp := schema.Transformation{Name: "c", Kind: schema.Compound,
		Args:  []schema.FormalArg{{Name: "i", Direction: schema.In}},
		Calls: []schema.Call{{TR: "t", Bindings: map[string]schema.Actual{"i": schema.FormalRefActual("i")}}}}
	dv := schema.Derivation{TR: "c", Params: map[string]schema.Actual{"i": schema.DatasetActual("input", "a")}}
	if _, err := Build([]schema.Derivation{dv}, schema.MapResolver(comp, tr1in1out())); err == nil {
		t.Error("compound node accepted")
	}
	// Unknown TR.
	if _, err := Build([]schema.Derivation{dv1("a", "b")}, schema.MapResolver()); err == nil {
		t.Error("unknown TR accepted")
	}
	// Cycle: x->y, y->x.
	if _, err := Build([]schema.Derivation{dv1("x", "y"), dv1("y", "x")}, resolver()); err == nil {
		t.Error("cycle accepted")
	}
}

func TestReadyFrontier(t *testing.T) {
	g, byOut := diamond(t)
	done := map[string]bool{}
	ready := g.Ready(done)
	if len(ready) != 2 {
		t.Fatalf("initial frontier: %d", len(ready))
	}
	done[byOut["b"]] = true
	ready = g.Ready(done)
	if len(ready) != 1 || ready[0].ID != byOut["c"] {
		t.Fatalf("after b: %v", ready)
	}
	done[byOut["c"]] = true
	ready = g.Ready(done)
	if len(ready) != 1 || ready[0].ID != byOut["d"] {
		t.Fatalf("after b,c: %v", ready)
	}
	done[byOut["d"]] = true
	if len(g.Ready(done)) != 0 {
		t.Error("frontier after completion")
	}
}

func TestTopoOrderAndLevels(t *testing.T) {
	g, byOut := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, n := range order {
		pos[n.ID] = i
	}
	if pos[byOut["d"]] < pos[byOut["b"]] || pos[byOut["d"]] < pos[byOut["c"]] {
		t.Error("topo violation")
	}
	levels := g.Levels()
	if len(levels) != 2 || len(levels[0]) != 2 || len(levels[1]) != 1 {
		t.Errorf("levels: %v", levels)
	}
	if g.Width() != 2 {
		t.Errorf("width: %d", g.Width())
	}
	st := g.Stats()
	if st.Nodes != 3 || st.Edges != 2 || st.Depth != 2 || st.Width != 2 || st.Sinks != 1 || st.ExternalInputs != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCriticalPath(t *testing.T) {
	g, _ := diamond(t)
	// Unit cost: depth 2.
	if cp := g.CriticalPath(func(*Node) float64 { return 1 }); cp != 2 {
		t.Errorf("unit critical path: %g", cp)
	}
	// Weighted: b=5, c=1, d=2 → a-side path 5+2=7.
	cp := g.CriticalPath(func(n *Node) float64 {
		switch n.Outputs[0] {
		case "b":
			return 5
		case "c":
			return 1
		default:
			return 2
		}
	})
	if cp != 7 {
		t.Errorf("weighted critical path: %g", cp)
	}
}

// Property: on random layered DAGs, executing nodes in Ready-frontier
// order never violates dependencies and completes all nodes.
func TestFrontierExecutionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		var dvs []schema.Derivation
		const layers, width = 5, 6
		name := func(l, i int) string { return fmt.Sprintf("x%d_%d", l, i) }
		for l := 1; l < layers; l++ {
			for i := 0; i < width; i++ {
				if rng.Intn(2) == 0 {
					dvs = append(dvs, dv1(name(l-1, rng.Intn(width)), name(l, i)))
				} else {
					dvs = append(dvs, dv2(name(l-1, rng.Intn(width)), name(l-1, rng.Intn(width)), name(l, i)))
				}
			}
		}
		g, err := Build(dvs, resolver())
		if err != nil {
			t.Fatal(err)
		}
		done := map[string]bool{}
		steps := 0
		for len(done) < g.Len() {
			ready := g.Ready(done)
			if len(ready) == 0 {
				t.Fatalf("trial %d: deadlock with %d/%d done", trial, len(done), g.Len())
			}
			// Complete a random ready node.
			n := ready[rng.Intn(len(ready))]
			for _, p := range n.Preds() {
				if !done[p.ID] {
					t.Fatalf("trial %d: node ready before predecessor", trial)
				}
			}
			done[n.ID] = true
			steps++
			if steps > g.Len()+1 {
				t.Fatal("runaway")
			}
		}
	}
}

func BenchmarkBuildLargeDAG(b *testing.B) {
	var dvs []schema.Derivation
	const n = 2000
	for i := 1; i < n; i++ {
		dvs = append(dvs, dv1(fmt.Sprintf("f%d", i/2), fmt.Sprintf("f%d", i)))
	}
	res := resolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(dvs, res); err != nil {
			b.Fatal(err)
		}
	}
}

// The topological order is computed once at Build and shared by
// TopoOrder, Levels, Width, Stats, and CriticalPath; callers must get
// stable, mutation-safe views of it.
func TestCachedTopoOrderIsStable(t *testing.T) {
	g, byOut := diamond(t)
	first, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned slice must not corrupt later calls.
	for i := range first {
		first[i] = nil
	}
	second, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 3 {
		t.Fatalf("topo after caller mutation: %v", second)
	}
	for _, n := range second {
		if n == nil {
			t.Fatal("cached topo order leaked caller mutation")
		}
	}
	// Same for Levels: returned structure is a fresh copy each call.
	lv := g.Levels()
	lv[0][0] = nil
	lv[1] = nil
	if again := g.Levels(); len(again) != 2 || again[0][0] == nil || len(again[1]) != 1 {
		t.Errorf("levels leaked caller mutation: %v", again)
	}
	// Degree accessors agree with the edge lists.
	if n, _ := g.Node(byOut["d"]); n.NumPreds() != 2 || n.NumSuccs() != 0 {
		t.Errorf("degrees of d: preds=%d succs=%d", n.NumPreds(), n.NumSuccs())
	}
	if n, _ := g.Node(byOut["b"]); n.NumPreds() != 0 || n.NumSuccs() != 1 {
		t.Errorf("degrees of b: preds=%d succs=%d", n.NumPreds(), n.NumSuccs())
	}
}
