package query

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/schema"
)

func mustParse(t testing.TB, q string) Expr {
	t.Helper()
	e, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return e
}

// resKey identifies a result set exactly: dataset names, transformation
// refs and derivation IDs in result order.
func resKey(res Results) string {
	var out []string
	for _, d := range res.Datasets {
		out = append(out, d.Name)
	}
	for _, tr := range res.Transformations {
		out = append(out, tr.Ref())
	}
	for _, dv := range res.Derivations {
		out = append(out, dv.ID)
	}
	return strings.Join(out, ",")
}

func TestExplain(t *testing.T) {
	c := fixture(t)
	cases := []struct {
		kind Kind
		q    string
		want string
	}{
		// Indexed conjuncts intersect smallest-first.
		{KDataset, `materialized and name = raw1`,
			`index datasets: [name = "raw1" ->1] ∩ [materialized ->2] => 1 candidate`},
		// Non-indexable conjuncts become the residual.
		{KDataset, `derived and name ~ "b*"`,
			`index datasets: [derived ->3] => 3 candidates; residual: name ~ "b*"`},
		// No indexable conjunct at all: scan fallback.
		{KDataset, `name ~ "raw*"`, `scan datasets: no indexable conjunct`},
		{KDataset, `not derived`, `scan datasets: no indexable conjunct`},
		// `*` constrains nothing.
		{KDataset, `*`, `scan datasets: no indexable conjunct`},
		// Kind-mismatched predicates are constant-false, not residual.
		{KDerivation, `derived`, `index derivations: [derived ->0] => 0 candidates`},
		{KTransformation, `materialized`,
			`index transformations: [materialized ->0] => 0 candidates`},
		{KDerivation, `tr = sdss::bcgSearch and executed`,
			`index derivations: [tr = sdss::bcgSearch ->1] ∩ [executed ->1] => 1 candidate`},
	}
	for _, tc := range cases {
		got, err := Explain(c, tc.kind, mustParse(t, tc.q))
		if err != nil {
			t.Errorf("Explain(%q): %v", tc.q, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Explain(%q):\n got %q\nwant %q", tc.q, got, tc.want)
		}
	}
}

func TestExplainErrors(t *testing.T) {
	c := fixture(t)
	if _, err := Explain(c, KDataset, mustParse(t, `descendantof(ghost)`)); err == nil {
		t.Error("Explain accepted unknown dataset in provenance closure")
	}
	if _, err := Explain(c, Kind(42), All); err == nil {
		t.Error("Explain accepted invalid kind")
	}
}

// TestRunScanEquivalence asserts the planner's indexed path returns
// exactly what the forced full scan returns — same objects, same order —
// across all kinds, including kind-mismatched and empty-result queries.
func TestRunScanEquivalence(t *testing.T) {
	c := fixture(t)
	cases := []struct {
		kind Kind
		qs   []string
	}{
		{KDataset, []string{
			`*`,
			`name = raw1`,
			`name = missing`,
			`name ~ "raw*"`,
			`name != raw1 and name ~ "raw*"`,
			`attr.owner = annis`,
			`attr.owner = "annis" and attr.stripe = "82"`,
			`attr.missing = x`,
			`type <= FITS-file`,
			`type <= SDSS`,
			`type <= "SDSS;Fileset"`,
			`type <= Dataset and derived`,
			`derived`,
			`not derived`,
			`materialized`,
			`virtual`,
			`virtual and descendantof(raw1)`,
			`descendantof(raw1)`,
			`ancestorof(clusters)`,
			`descendantof(raw1) and descendantof(raw2)`,
			`derived or name = raw1`,
			`not (derived or name = raw1)`,
			`materialized and name = raw1 and attr.owner = annis`,
			// Kind mismatches: constant-false on both paths.
			`executed`,
			`tr = sdss::brgSearch`,
			`consumes(raw1)`,
			`produces(clusters)`,
			`input <= FITS-file`,
			`simple`,
		}},
		{KTransformation, []string{
			`*`,
			`name = sdss::brgSearch`,
			`name = nosuch::tr`,
			`input <= FITS-file`,
			`output <= Object-map`,
			`compound`,
			`simple`,
			`simple and attr.author = annis`,
			`attr.author = annis`,
			`name ~ "sdss::b*"`,
			`input <= Dataset`,
			`derived`,
			`materialized`,
			`descendantof(raw1)`,
		}},
		{KDerivation, []string{
			`*`,
			`tr = sdss::brgSearch`,
			`tr = sdss::bcgSearch`,
			`tr = nosuch::tr`,
			`consumes(raw1)`,
			`consumes(missing)`,
			`produces(clusters)`,
			`produces(raw1)`,
			`executed`,
			`not executed`,
			`attr.campaign = dr1`,
			`attr.campaign = dr1 and tr = sdss::bcgSearch`,
			`consumes(brg1) and consumes(brg2)`,
			`tr = sdss::brgSearch and consumes(raw1)`,
			`produces(clusters) and executed`,
			`derived`,
			`materialized`,
			`type <= SDSS`,
		}},
	}
	for _, group := range cases {
		for _, q := range group.qs {
			e := mustParse(t, q)
			idx, err := Run(c, group.kind, e)
			if err != nil {
				t.Errorf("Run(kind %d, %q): %v", group.kind, q, err)
				continue
			}
			scan, err := RunScan(c, group.kind, e)
			if err != nil {
				t.Errorf("RunScan(kind %d, %q): %v", group.kind, q, err)
				continue
			}
			if resKey(idx) != resKey(scan) {
				t.Errorf("kind %d %q:\n index %q\n scan  %q", group.kind, q, resKey(idx), resKey(scan))
			}
		}
	}
}

// TestRunScanErrorEquivalence: queries that fail must fail on both
// paths, even when the indexed path detects the error at plan time.
func TestRunScanErrorEquivalence(t *testing.T) {
	c := fixture(t)
	for _, q := range []string{`descendantof(ghost)`, `ancestorof(ghost)`} {
		e := mustParse(t, q)
		if _, err := Run(c, KDataset, e); err == nil {
			t.Errorf("Run(%q): expected error", q)
		}
		if _, err := RunScan(c, KDataset, e); err == nil {
			t.Errorf("RunScan(%q): expected error", q)
		}
	}
	if _, err := RunScan(c, Kind(42), All); err == nil {
		t.Error("RunScan accepted invalid kind")
	}
}

// TestQueryDuringMutationStorm runs indexed queries concurrently with
// epoch-bump and derivation storms (run with -race). Every query sees
// one consistent snapshot: `name = hot and materialized` can never miss,
// because the epoch bump and the replica restamp are one atomic
// mutation.
func TestQueryDuringMutationStorm(t *testing.T) {
	c := catalog.New(nil)
	if err := c.AddDataset(schema.Dataset{Name: "hot"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica(schema.Replica{ID: "r-hot", Dataset: "hot", Site: "s", PFN: "/hot"}); err != nil {
		t.Fatal(err)
	}
	tr := schema.Transformation{Namespace: "st", Name: "gen", Kind: schema.Simple, Exec: "/bin/gen",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		}}
	if err := c.AddTransformation(tr); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := c.BumpEpoch("hot", true); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := c.AddDerivation(schema.Derivation{TR: "st::gen", Params: map[string]schema.Actual{
				"o": schema.DatasetActual("output", fmt.Sprintf("out%d", i)),
				"i": schema.DatasetActual("input", "hot"),
			}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	hot := mustParse(t, `name = hot and materialized`)
	derived := mustParse(t, `derived`)
	var readWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := Run(c, KDataset, hot)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Datasets) != 1 {
					t.Error("query observed torn epoch/replica state")
					return
				}
				dres, err := Run(c, KDataset, derived)
				if err != nil {
					t.Error(err)
					return
				}
				dvres, err := Run(c, KDerivation, All)
				if err != nil {
					t.Error(err)
					return
				}
				// Each derivation registers exactly one derived output;
				// separate Runs take separate snapshots, so the counts
				// can only drift forward, never disagree downward.
				if len(dvres.Derivations) < len(dres.Datasets) {
					t.Errorf("%d derivations but %d derived datasets", len(dvres.Derivations), len(dres.Datasets))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readWG.Wait()
	if err := c.CheckIndexes(); err != nil {
		t.Error(err)
	}
}
