package query

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/obs"
	"chimera/internal/schema"
)

// The predicate planner. A query is planned by flattening its top-level
// AND-conjuncts and pulling every *indexable* conjunct — one whose
// exact matching set the catalog's secondary indexes can produce — into
// a candidate-set intersection. The remaining (residual) conjuncts are
// evaluated only over the candidates. A query with no indexable
// conjunct falls back to scanning the snapshot, which is still one
// lock acquisition and zero copies, versus the old path's full
// copy+sort plus per-object lock traffic.
//
// Indexable conjuncts (per object kind):
//
//	name = v                 exact-name lookup
//	attr.k = v               attribute index
//	type <= T                exact-type sets unioned under conformance (datasets)
//	derived | materialized | virtual | executed   flag sets
//	tr = ref                 transformation-ref index (incl. versionless)
//	consumes(ds) | produces(ds)                   provenance index
//	descendantof(ds) | ancestorof(ds)             provenance closure (datasets)
//
// A predicate whose kind cannot match (e.g. `derived` against
// derivations) is constant-false: it yields the empty candidate set.
// Everything else — negations, OR subtrees, `!=`/`~` comparisons,
// transformation type predicates — stays residual.

// Query metrics: planner path counters, candidate-set sizes, and
// end-to-end run latency by path.
var (
	queryCandBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

	metricQueryRuns = obs.Default.CounterVec("vdc_query_runs_total",
		"Query executions by planner path (index = candidate intersection, scan = full snapshot scan).", "path")
	metricQuerySeconds = obs.Default.HistogramVec("vdc_query_seconds",
		"End-to-end query latency (plan + execute) by planner path.", obs.TimeBuckets, "path")
	metricQueryCandidates = obs.Default.Histogram("vdc_query_candidates",
		"Candidate-set size after index intersection (indexed path only).", queryCandBuckets)

	queryRunsIndex = metricQueryRuns.With("index")
	queryRunsScan  = metricQueryRuns.With("scan")
	querySecsIndex = metricQuerySeconds.With("index")
	querySecsScan  = metricQuerySeconds.With("scan")
)

// cset is a candidate set drawn from an index: either an IndexSet, a
// closure map, or nil-nil for the constant-empty set.
type cset struct {
	set     catalog.IndexSet
	boolSet map[string]bool
}

func (s cset) size() int {
	if s.set != nil {
		return len(s.set)
	}
	return len(s.boolSet)
}

func (s cset) has(id string) bool {
	if s.set != nil {
		return s.set.Has(id)
	}
	return s.boolSet[id]
}

func (s cset) each(fn func(string)) {
	if s.set != nil {
		for id := range s.set {
			fn(id)
		}
		return
	}
	for id := range s.boolSet {
		fn(id)
	}
}

// planStep records one indexed conjunct for the explain string.
type planStep struct {
	pred string // the conjunct, in query syntax
	size int    // its candidate-set size at plan time
	set  cset
}

// queryPlan is the executable plan for one Run.
type queryPlan struct {
	kind       Kind
	scan       bool
	scanReason string
	steps      []planStep // indexed conjuncts, when !scan
	residual   Expr       // nil when every conjunct was indexed
	candidates []string   // sorted intersection, when !scan
}

// String renders the plan in EXPLAIN style, e.g.
//
//	index derivations: [tr = sdss::brgSearch ->2] ∩ [executed ->1] => 1 candidate; residual: attr.campaign = "dr1"
//	scan datasets: no indexable conjunct
func (p *queryPlan) String() string {
	var b strings.Builder
	if p.scan {
		fmt.Fprintf(&b, "scan %s: %s", kindNoun(p.kind), p.scanReason)
		return b.String()
	}
	fmt.Fprintf(&b, "index %s: ", kindNoun(p.kind))
	for i, st := range p.steps {
		if i > 0 {
			b.WriteString(" ∩ ")
		}
		fmt.Fprintf(&b, "[%s ->%d]", st.pred, st.size)
	}
	noun := "candidates"
	if len(p.candidates) == 1 {
		noun = "candidate"
	}
	fmt.Fprintf(&b, " => %d %s", len(p.candidates), noun)
	if p.residual != nil {
		fmt.Fprintf(&b, "; residual: %s", p.residual)
	}
	return b.String()
}

func kindNoun(k Kind) string {
	switch k {
	case KDataset:
		return "datasets"
	case KTransformation:
		return "transformations"
	default:
		return "derivations"
	}
}

// flattenAnd appends the AND-conjuncts of e to out.
func flattenAnd(e Expr, out []Expr) []Expr {
	if a, ok := e.(andExpr); ok {
		out = flattenAnd(a.l, out)
		return flattenAnd(a.r, out)
	}
	return append(out, e)
}

// andChain re-joins residual conjuncts in their original order, so the
// residual short-circuits exactly like the full expression would.
func andChain(conjuncts []Expr) Expr {
	if len(conjuncts) == 0 {
		return nil
	}
	e := conjuncts[0]
	for _, c := range conjuncts[1:] {
		e = andExpr{l: e, r: c}
	}
	return e
}

// emptySet is the constant-false candidate set.
var emptySet = cset{}

// singleton returns a one-element candidate set, or the empty set when
// present is false.
func singleton(id string, present bool) cset {
	if !present {
		return emptySet
	}
	return cset{set: catalog.IndexSet{id: struct{}{}}}
}

// indexConjunct maps one conjunct to its exact candidate set. It
// returns handled=false when the conjunct is not indexable for this
// kind and must stay residual. Errors are plan-time failures (an
// unknown dataset in a provenance closure) and abort the query, like
// the scan path's eval-time error would.
func indexConjunct(ctx *evalCtx, kind Kind, e Expr) (cset, bool, error) {
	v := ctx.view
	switch p := e.(type) {
	case namePred:
		if p.op != opEq {
			return emptySet, false, nil
		}
		switch kind {
		case KDataset:
			_, ok := v.Dataset(p.val)
			return singleton(p.val, ok), true, nil
		case KTransformation:
			// Query names are exact canonical refs; versionless
			// resolution is a lookup concern, not a search one.
			return singleton(p.val, v.HasTransformation(p.val)), true, nil
		default:
			return cset{set: v.DerivationsByName(p.val)}, true, nil
		}
	case attrPred:
		if p.op != opEq {
			return emptySet, false, nil
		}
		switch kind {
		case KDataset:
			return cset{set: v.DatasetsByAttr(p.key, p.val)}, true, nil
		case KTransformation:
			return cset{set: v.TransformationsByAttr(p.key, p.val)}, true, nil
		default:
			return cset{set: v.DerivationsByAttr(p.key, p.val)}, true, nil
		}
	case typePred:
		switch kind {
		case KDataset:
			if p.field != "type" {
				// input/output predicates never match datasets.
				return emptySet, true, nil
			}
			if p.t.IsUniversal() {
				// Matches every dataset: constrains nothing.
				return emptySet, false, nil
			}
			return cset{set: v.DatasetsByType(p.t)}, true, nil
		case KTransformation:
			// Formal-list scan; stays residual.
			return emptySet, false, nil
		default:
			return emptySet, true, nil // never matches derivations
		}
	case flagPred:
		switch p.flag {
		case "derived":
			if kind != KDataset {
				return emptySet, true, nil
			}
			return cset{set: v.DerivedDatasets()}, true, nil
		case "materialized":
			if kind != KDataset {
				return emptySet, true, nil
			}
			return cset{set: v.MaterializedDatasets()}, true, nil
		case "virtual":
			if kind != KDataset {
				return emptySet, true, nil
			}
			vs := make(catalog.IndexSet)
			for name := range v.DerivedDatasets() {
				if !v.Materialized(name) {
					vs[name] = struct{}{}
				}
			}
			return cset{set: vs}, true, nil
		case "executed":
			if kind != KDerivation {
				return emptySet, true, nil
			}
			return cset{set: v.ExecutedDerivations()}, true, nil
		default: // simple/compound: cheap residual for transformations
			if kind != KTransformation {
				return emptySet, true, nil
			}
			return emptySet, false, nil
		}
	case trPred:
		if kind != KDerivation {
			return emptySet, true, nil
		}
		return cset{set: v.DerivationsByTR(p.ref)}, true, nil
	case relPred:
		switch p.rel {
		case "descendantof", "ancestorof":
			if kind != KDataset {
				return emptySet, true, nil
			}
			var m map[string]bool
			var err error
			if p.rel == "descendantof" {
				m, err = ctx.descendants(p.ds)
			} else {
				m, err = ctx.ancestors(p.ds)
			}
			if err != nil {
				return emptySet, false, err
			}
			return cset{boolSet: m}, true, nil
		case "consumes":
			if kind != KDerivation {
				return emptySet, true, nil
			}
			s := make(catalog.IndexSet)
			for _, id := range v.ConsumersOf(p.ds) {
				s[id] = struct{}{}
			}
			return cset{set: s}, true, nil
		case "produces":
			if kind != KDerivation {
				return emptySet, true, nil
			}
			prod := v.ProducerOf(p.ds)
			return singleton(prod, prod != ""), true, nil
		}
		return emptySet, false, nil
	default:
		return emptySet, false, nil
	}
}

// plan builds the query plan for e against the snapshot in ctx.
func plan(ctx *evalCtx, kind Kind, e Expr, forceScan bool) (*queryPlan, error) {
	p := &queryPlan{kind: kind}
	if forceScan {
		p.scan = true
		p.scanReason = "planner disabled"
		p.residual = e
		return p, nil
	}
	conjuncts := flattenAnd(e, nil)
	var residual []Expr
	for _, cj := range conjuncts {
		if _, ok := cj.(truePred); ok {
			continue // `*` constrains nothing
		}
		set, handled, err := indexConjunct(ctx, kind, cj)
		if err != nil {
			return nil, err
		}
		if !handled {
			residual = append(residual, cj)
			continue
		}
		p.steps = append(p.steps, planStep{pred: cj.String(), size: set.size(), set: set})
	}
	if len(p.steps) == 0 {
		p.scan = true
		p.scanReason = "no indexable conjunct"
		p.residual = e
		return p, nil
	}
	p.residual = andChain(residual)

	// Intersect, iterating the smallest set and probing the others.
	sort.SliceStable(p.steps, func(i, j int) bool { return p.steps[i].size < p.steps[j].size })
	smallest := p.steps[0].set
	rest := p.steps[1:]
	smallest.each(func(id string) {
		for _, st := range rest {
			if !st.set.has(id) {
				return
			}
		}
		p.candidates = append(p.candidates, id)
	})
	// Left unsorted: execute sorts the (usually far smaller) result set,
	// not the candidates.
	return p, nil
}

// run is the shared Run/RunScan implementation: an epoch view (zero
// shard-lock acquisitions), consulted through the result cache unless
// the caller forces a scan.
func run(callCtx context.Context, c *catalog.Catalog, kind Kind, e Expr, forceScan bool) (Results, error) {
	if kind != KDataset && kind != KTransformation && kind != KDerivation {
		return Results{}, fmt.Errorf("query: invalid kind %d", int(kind))
	}
	start := time.Now()
	_, span := obs.StartSpan(callCtx, "query.run")
	span.SetAttr("kind", kindNoun(kind))
	defer span.End()
	v := c.View()
	defer v.Close()

	// Cache lookup. The view is acquired *first* and the key derived
	// from its own epoch vector, so a hit is exactly a prior execution
	// against byte-identical state; RunScan bypasses (the ablation must
	// always execute).
	useCache := !forceScan && planCache.enabled()
	var key string
	if useCache {
		key = cacheKey(kind, e, v)
		if res, ok := planCache.get(key); ok {
			metricPlanCacheHits.Inc()
			span.SetAttr("path", "cached")
			queryRunsCached.Inc()
			querySecsCached.ObserveSince(start)
			return res, nil
		}
		metricPlanCacheMisses.Inc()
	}

	res, p, err := evalView(v, kind, e, forceScan)
	if err != nil {
		span.SetError(err)
		return Results{}, err
	}
	if useCache {
		planCache.put(key, cloneResults(res))
	}
	if p.scan {
		span.SetAttr("path", "scan")
		queryRunsScan.Inc()
		querySecsScan.ObserveSince(start)
	} else {
		span.SetAttr("path", "index")
		span.SetAttr("candidates", strconv.Itoa(len(p.candidates)))
		queryRunsIndex.Inc()
		querySecsIndex.ObserveSince(start)
		metricQueryCandidates.Observe(float64(len(p.candidates)))
	}
	return res, nil
}

// evalView plans and executes a query against an already-open view:
// the shared body of the cached epoch path and the locked oracle.
func evalView(v *catalog.View, kind Kind, e Expr, forceScan bool) (Results, *queryPlan, error) {
	ctx := newEvalCtx(v)
	p, err := plan(ctx, kind, e, forceScan)
	if err != nil {
		return Results{}, nil, err
	}
	res, err := p.execute(ctx, e)
	if err != nil {
		return Results{}, nil, err
	}
	return res, p, nil
}

// execute materializes the plan's results. Result order matches the
// legacy full-scan path: datasets by name, transformations by ref,
// derivations by ID.
func (p *queryPlan) execute(ctx *evalCtx, full Expr) (Results, error) {
	var res Results
	if p.scan {
		return p.executeScan(ctx, full)
	}
	keep := func(o object) (bool, error) {
		if p.residual == nil {
			return true, nil
		}
		return p.residual.eval(ctx, o)
	}
	v := ctx.view
	switch p.kind {
	case KDataset:
		for _, name := range p.candidates {
			ds, ok := v.Dataset(name)
			if !ok {
				continue
			}
			ok, err := keep(object{kind: KDataset, ds: &ds})
			if err != nil {
				return Results{}, err
			}
			if ok {
				res.Datasets = append(res.Datasets, ds)
			}
		}
		sort.Slice(res.Datasets, func(i, j int) bool { return res.Datasets[i].Name < res.Datasets[j].Name })
	case KTransformation:
		for _, ref := range p.candidates {
			tr, ok := v.Transformation(ref)
			if !ok {
				continue
			}
			ok, err := keep(object{kind: KTransformation, tr: &tr})
			if err != nil {
				return Results{}, err
			}
			if ok {
				res.Transformations = append(res.Transformations, tr)
			}
		}
		sort.Slice(res.Transformations, func(i, j int) bool { return res.Transformations[i].Ref() < res.Transformations[j].Ref() })
	case KDerivation:
		for _, id := range p.candidates {
			dv, ok := v.Derivation(id)
			if !ok {
				continue
			}
			ok, err := keep(object{kind: KDerivation, dv: &dv})
			if err != nil {
				return Results{}, err
			}
			if ok {
				res.Derivations = append(res.Derivations, dv)
			}
		}
		sort.Slice(res.Derivations, func(i, j int) bool { return res.Derivations[i].ID < res.Derivations[j].ID })
	}
	return res, nil
}

func (p *queryPlan) executeScan(ctx *evalCtx, full Expr) (Results, error) {
	var res Results
	var evalErr error
	v := ctx.view
	switch p.kind {
	case KDataset:
		v.RangeDatasets(func(ds schema.Dataset) bool {
			ok, err := full.eval(ctx, object{kind: KDataset, ds: &ds})
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				res.Datasets = append(res.Datasets, ds)
			}
			return true
		})
		sort.Slice(res.Datasets, func(i, j int) bool { return res.Datasets[i].Name < res.Datasets[j].Name })
	case KTransformation:
		v.RangeTransformations(func(tr schema.Transformation) bool {
			ok, err := full.eval(ctx, object{kind: KTransformation, tr: &tr})
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				res.Transformations = append(res.Transformations, tr)
			}
			return true
		})
		sort.Slice(res.Transformations, func(i, j int) bool { return res.Transformations[i].Ref() < res.Transformations[j].Ref() })
	case KDerivation:
		v.RangeDerivations(func(dv schema.Derivation) bool {
			ok, err := full.eval(ctx, object{kind: KDerivation, dv: &dv})
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				res.Derivations = append(res.Derivations, dv)
			}
			return true
		})
		sort.Slice(res.Derivations, func(i, j int) bool { return res.Derivations[i].ID < res.Derivations[j].ID })
	}
	if evalErr != nil {
		return Results{}, evalErr
	}
	return res, nil
}

// Explain plans (but does not execute) a query and renders the plan: a
// one-line EXPLAIN string showing the chosen path, the indexed
// conjuncts with their candidate-set sizes, and the residual predicate.
func Explain(c *catalog.Catalog, kind Kind, e Expr) (string, error) {
	info, err := ExplainQuery(c, kind, e)
	if err != nil {
		return "", err
	}
	return info.Plan, nil
}

// ExplainInfo is Explain plus the cache placement of the query: whether
// a run right now would be answered from the result cache, and the
// epoch vector (journal instance + per-shard mutation versions) that
// placement was validated against. vds surfaces it via ?explain=1.
type ExplainInfo struct {
	Plan string `json:"plan"`
	// Cached reports whether a cached result exists for this exact
	// predicate at the current epoch vector.
	Cached bool `json:"cached"`
	// Epoch is the view's epoch vector the cache probe keyed on.
	Epoch string `json:"epoch"`
}

// ExplainQuery plans a query and reports the plan together with its
// cache placement at the current published epochs.
func ExplainQuery(c *catalog.Catalog, kind Kind, e Expr) (ExplainInfo, error) {
	if kind != KDataset && kind != KTransformation && kind != KDerivation {
		return ExplainInfo{}, fmt.Errorf("query: invalid kind %d", int(kind))
	}
	v := c.View()
	defer v.Close()
	ctx := newEvalCtx(v)
	p, err := plan(ctx, kind, e, false)
	if err != nil {
		return ExplainInfo{}, err
	}
	info := ExplainInfo{Plan: p.String(), Epoch: v.EpochKey()}
	if planCache.enabled() {
		info.Cached = planCache.has(cacheKey(kind, e, v))
	}
	return info, nil
}
