package query

import (
	"container/list"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"chimera/internal/catalog"
	"chimera/internal/obs"
	"chimera/internal/schema"
)

// Query result cache. Results are cached under the *normalized
// predicate plus the view's epoch vector* (catalog.View.EpochKey): the
// per-shard mutation versions advance on every applied closure, so a
// key can never serve stale results — any mutation anywhere in the
// catalog (including non-journaled adjacency updates and type
// registrations) moves at least one shard's version and the next run
// of the same query misses to a fresh execution. Invalidation is
// therefore free: old entries are never wrong, merely unreachable, and
// the LRU bound reclaims them.
//
// The cache is sharded to keep the hot analyst path from serializing
// on one mutex; each shard is an independent LRU over its slice of the
// key space. RunScan and RunOracle bypass the cache entirely (the
// ablation and the equivalence oracle must always execute).

const cacheShardCount = 8

// DefaultPlanCacheCapacity bounds the total cached results unless
// SetPlanCacheCapacity overrides it.
const DefaultPlanCacheCapacity = 1024

var (
	metricPlanCacheHits = obs.Default.Counter("vdc_query_plan_cache_hits_total",
		"Query runs answered from the plan/result cache (predicate + epoch vector match).")
	metricPlanCacheMisses = obs.Default.Counter("vdc_query_plan_cache_misses_total",
		"Query runs that executed because no cache entry matched the predicate at the current epoch.")
	metricPlanCacheEvictions = obs.Default.Counter("vdc_query_plan_cache_evictions_total",
		"Cache entries evicted by the LRU bound (stale-epoch entries age out here).")

	queryRunsCached = metricQueryRuns.With("cached")
	querySecsCached = metricQuerySeconds.With("cached")
)

type cacheEntry struct {
	key string
	res Results
}

type cacheShard struct {
	mu sync.Mutex
	ll *list.List               // front = most recently used
	m  map[string]*list.Element // key -> element holding *cacheEntry
}

type resultCache struct {
	shards   [cacheShardCount]cacheShard
	perShard atomic.Int64 // capacity per shard; <= 0 disables the cache
}

var planCache = newResultCache(DefaultPlanCacheCapacity)

func newResultCache(total int) *resultCache {
	c := &resultCache{}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].m = make(map[string]*list.Element)
	}
	c.setCapacity(total)
	return c
}

func (c *resultCache) setCapacity(total int) {
	if total <= 0 {
		c.perShard.Store(0)
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			s.ll.Init()
			s.m = make(map[string]*list.Element)
			s.mu.Unlock()
		}
		return
	}
	per := (total + cacheShardCount - 1) / cacheShardCount
	c.perShard.Store(int64(per))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for s.ll.Len() > per {
			c.evictOldest(s)
		}
		s.mu.Unlock()
	}
}

func (c *resultCache) enabled() bool { return c.perShard.Load() > 0 }

func (c *resultCache) shardOf(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShardCount]
}

// get returns a defensive copy of the cached results for key, if any.
func (c *resultCache) get(key string) (Results, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	el, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		return Results{}, false
	}
	s.ll.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	s.mu.Unlock()
	return cloneResults(res), true
}

// has reports whether key is cached, without touching recency
// (Explain's probe must not distort the LRU).
func (c *resultCache) has(key string) bool {
	s := c.shardOf(key)
	s.mu.Lock()
	_, ok := s.m[key]
	s.mu.Unlock()
	return ok
}

func (c *resultCache) put(key string, res Results) {
	per := int(c.perShard.Load())
	if per <= 0 {
		return
	}
	s := c.shardOf(key)
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		// A concurrent run of the same query at the same epoch raced us
		// here; both executed against identical snapshots, so the values
		// are interchangeable.
		s.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		s.mu.Unlock()
		return
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, res: res})
	for s.ll.Len() > per {
		c.evictOldest(s)
	}
	s.mu.Unlock()
}

// evictOldest drops the least-recently-used entry. Callers hold s.mu.
func (c *resultCache) evictOldest(s *cacheShard) {
	el := s.ll.Back()
	if el == nil {
		return
	}
	s.ll.Remove(el)
	delete(s.m, el.Value.(*cacheEntry).key)
	metricPlanCacheEvictions.Inc()
}

func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// cacheKey is the cache identity of one query: object kind, the
// expression's canonical rendering, and the snapshot's epoch vector.
func cacheKey(kind Kind, e Expr, v *catalog.View) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(int(kind)))
	b.WriteByte('|')
	b.WriteString(e.String())
	b.WriteByte('|')
	b.WriteString(v.EpochKey())
	return b.String()
}

// cloneResults shallow-copies the result slices so cached storage is
// never aliased by callers (the object structs themselves are values).
func cloneResults(r Results) Results {
	return Results{
		Datasets:        append([]schema.Dataset(nil), r.Datasets...),
		Transformations: append([]schema.Transformation(nil), r.Transformations...),
		Derivations:     append([]schema.Derivation(nil), r.Derivations...),
	}
}

// SetPlanCacheCapacity bounds the total cached query results across the
// process; n <= 0 disables and clears the cache. The default is
// DefaultPlanCacheCapacity.
func SetPlanCacheCapacity(n int) { planCache.setCapacity(n) }

// CacheInfo is the cache readout /debug/vdc reports.
type CacheInfo struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// CacheStats reports the plan/result cache's occupancy and cumulative
// hit/miss/eviction counters.
func CacheStats() CacheInfo {
	return CacheInfo{
		Capacity:  int(planCache.perShard.Load()) * cacheShardCount,
		Size:      planCache.len(),
		Hits:      metricPlanCacheHits.Value(),
		Misses:    metricPlanCacheMisses.Value(),
		Evictions: metricPlanCacheEvictions.Value(),
	}
}
