package query

import (
	"fmt"
	"reflect"
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/schema"
)

// resetCache clears the process-wide plan/result cache and restores the
// default capacity when the test ends, so cache state never leaks
// across tests.
func resetCache(t *testing.T) {
	t.Helper()
	SetPlanCacheCapacity(0)
	SetPlanCacheCapacity(DefaultPlanCacheCapacity)
	t.Cleanup(func() {
		SetPlanCacheCapacity(0)
		SetPlanCacheCapacity(DefaultPlanCacheCapacity)
	})
}

// TestCacheHitServesIdenticalResults: the second run of a query at an
// unchanged epoch must be a cache hit and return results equal to both
// the first run and an uncached scan.
func TestCacheHitServesIdenticalResults(t *testing.T) {
	resetCache(t)
	c := fixture(t)
	e := mustParse(t, "derived")

	before := CacheStats()
	r1, err := Run(c, KDataset, e)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c, KDataset, e)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("cached results differ:\n%+v\n%+v", r1, r2)
	}
	scan, err := RunScan(c, KDataset, e)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, scan) {
		t.Fatalf("cached run differs from scan:\n%+v\n%+v", r1, scan)
	}
	after := CacheStats()
	if after.Hits-before.Hits != 1 || after.Misses-before.Misses != 1 {
		t.Fatalf("hits +%d misses +%d, want +1/+1",
			after.Hits-before.Hits, after.Misses-before.Misses)
	}
	// The cached copy must be defensive: mutating a returned slice
	// element cannot poison later hits.
	if len(r2.Datasets) == 0 {
		t.Fatal("expected derived datasets")
	}
	r2.Datasets[0].Name = "clobbered"
	r3, err := Run(c, KDataset, e)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatal("cache entry aliased by a caller mutation")
	}
}

// TestCacheInvalidationOnMutation: any catalog mutation moves a shard's
// epoch version, so the same query misses and observes the new state —
// entries can go stale but can never be served stale.
func TestCacheInvalidationOnMutation(t *testing.T) {
	resetCache(t)
	c := fixture(t)
	e := mustParse(t, "attr.owner = annis")

	r1, err := Run(c, KDataset, e)
	if err != nil {
		t.Fatal(err)
	}
	mid := CacheStats()
	if err := c.AddDataset(schema.Dataset{
		Name: "raw3", Attrs: schema.Attributes{"owner": "annis"},
	}); err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c, KDataset, e)
	if err != nil {
		t.Fatal(err)
	}
	after := CacheStats()
	if after.Hits != mid.Hits {
		t.Fatal("post-mutation run hit a stale entry")
	}
	if after.Misses-mid.Misses != 1 {
		t.Fatalf("post-mutation misses +%d, want +1", after.Misses-mid.Misses)
	}
	if len(r2.Datasets) != len(r1.Datasets)+1 {
		t.Fatalf("mutation invisible: %d -> %d datasets", len(r1.Datasets), len(r2.Datasets))
	}
}

// TestCacheCapacityAndDisable: the LRU bound holds and evicts, and
// capacity 0 disables caching entirely.
func TestCacheCapacityAndDisable(t *testing.T) {
	resetCache(t)
	c := fixture(t)

	SetPlanCacheCapacity(8)
	before := CacheStats()
	for i := 0; i < 64; i++ {
		if _, err := Run(c, KDataset, mustParse(t, fmt.Sprintf("attr.stripe = %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	after := CacheStats()
	if after.Size > after.Capacity {
		t.Fatalf("size %d exceeds capacity %d", after.Size, after.Capacity)
	}
	if after.Evictions == before.Evictions {
		t.Fatal("64 distinct queries at capacity 8 must evict")
	}

	SetPlanCacheCapacity(0)
	if got := CacheStats(); got.Size != 0 || got.Capacity != 0 {
		t.Fatalf("disable left size=%d capacity=%d", got.Size, got.Capacity)
	}
	e := mustParse(t, "derived")
	h0 := CacheStats().Hits
	for i := 0; i < 3; i++ {
		if _, err := Run(c, KDataset, e); err != nil {
			t.Fatal(err)
		}
	}
	if got := CacheStats().Hits; got != h0 {
		t.Fatalf("disabled cache served %d hits", got-h0)
	}
}

// TestExplainReportsCachePlacement: ?explain=1's backing call reports
// whether a run right now would be served from cache, keyed on the
// current epoch vector, without distorting the LRU.
func TestExplainReportsCachePlacement(t *testing.T) {
	resetCache(t)
	c := fixture(t)
	e := mustParse(t, "executed")

	info, err := ExplainQuery(c, KDerivation, e)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Fatal("cold query reported cached")
	}
	v := c.View()
	wantEpoch := v.EpochKey()
	v.Close()
	if info.Epoch != wantEpoch {
		t.Fatalf("epoch %q, want %q", info.Epoch, wantEpoch)
	}
	if info.Plan == "" {
		t.Fatal("empty plan")
	}

	if _, err := Run(c, KDerivation, e); err != nil {
		t.Fatal(err)
	}
	info, err = ExplainQuery(c, KDerivation, e)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Fatal("executed query not reported cached")
	}

	// A mutation moves the epoch vector: the placement flips back.
	if err := c.AddDataset(schema.Dataset{Name: "bump"}); err != nil {
		t.Fatal(err)
	}
	info, err = ExplainQuery(c, KDerivation, e)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Fatal("stale-epoch entry reported cached")
	}
	if info.Epoch == wantEpoch {
		t.Fatal("epoch vector did not move on mutation")
	}
}

// TestRunOracleBypassesCache: the locked equivalence oracle always
// executes — it must neither consult nor populate the cache — and its
// results match the epoch path's.
func TestRunOracleBypassesCache(t *testing.T) {
	resetCache(t)
	c := fixture(t)
	e := mustParse(t, "attr.tag != x and derived")

	before := CacheStats()
	o1, err := RunOracle(c, KDataset, e)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := RunOracle(c, KDataset, e)
	if err != nil {
		t.Fatal(err)
	}
	after := CacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses || after.Size != before.Size {
		t.Fatalf("oracle touched the cache: %+v -> %+v", before, after)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("oracle runs differ")
	}
	r, err := Run(c, KDataset, e)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, o1) {
		t.Fatalf("epoch path differs from locked oracle:\n%+v\n%+v", r, o1)
	}
}

// TestRunAcquiresNoShardLocks: the satellite lock-freedom assertion at
// the query layer — Run (cached or not) takes zero shard read locks;
// RunOracle, by definition, takes one per shard.
func TestRunAcquiresNoShardLocks(t *testing.T) {
	resetCache(t)
	c := fixture(t)
	e := mustParse(t, "consumes(raw1)")

	before := catalog.LockReadAcquisitions()
	for i := 0; i < 3; i++ { // miss then hits: both paths lock-free
		if _, err := Run(c, KDerivation, e); err != nil {
			t.Fatal(err)
		}
	}
	if got := catalog.LockReadAcquisitions() - before; got != 0 {
		t.Fatalf("query.Run acquired %d shard read locks, want 0", got)
	}
	if _, err := RunOracle(c, KDerivation, e); err != nil {
		t.Fatal(err)
	}
	if got := catalog.LockReadAcquisitions() - before; got != uint64(c.Shards()) {
		t.Fatalf("RunOracle acquired %d shard read locks, want %d", got, c.Shards())
	}
}
