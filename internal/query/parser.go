package query

import (
	"fmt"
	"path"
	"strings"
	"unicode"

	"chimera/internal/dtype"
)

// Parse parses the query language described in the package comment.
//
// Grammar:
//
//	expr   := and ("or" and)*
//	and    := unary ("and" unary)*
//	unary  := "not" unary | "(" expr ")" | pred
//	pred   := "*"
//	        | "name" cmp value
//	        | "attr" "." key cmp value
//	        | ("type" | "input" | "output") "<=" typeexpr
//	        | "tr" "=" value
//	        | rel "(" value ")"          rel: descendantof ancestorof consumes produces
//	        | flag                        flag: derived materialized virtual executed simple compound
//	cmp    := "=" | "!=" | "~"
//	value  := bareword | "quoted string"
//	typeexpr := content[:format[:encoding]] with "_" for an unset dimension
func Parse(src string) (Expr, error) {
	p := &qparser{toks: qlex(src)}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("query: trailing input at %q", p.peek())
	}
	return e, nil
}

type qtok struct {
	text     string
	isString bool
}

// qlex splits the source into tokens: quoted strings, barewords (which
// may contain . - _ and alphanumerics), and single/double-char symbols.
func qlex(src string) []qtok {
	var toks []qtok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				b.WriteByte(src[j])
				j++
			}
			toks = append(toks, qtok{text: b.String(), isString: true})
			i = j + 1
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, qtok{text: "!="})
			i += 2
		case c == ':' && i+1 < len(src) && src[i+1] == ':':
			toks = append(toks, qtok{text: "::"})
			i += 2
		case c == '<' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, qtok{text: "<="})
			i += 2
		case strings.ContainsRune("()=~*:", rune(c)):
			toks = append(toks, qtok{text: string(c)})
			i++
		default:
			j := i
			for j < len(src) && isWordChar(src[j]) {
				j++
			}
			if j == i { // unknown char; emit as-is so the parser errors
				j = i + 1
			}
			toks = append(toks, qtok{text: src[i:j]})
			i = j
		}
	}
	return toks
}

func isWordChar(c byte) bool {
	return c == '.' || c == '-' || c == '_' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

type qparser struct {
	toks []qtok
	pos  int
}

func (p *qparser) eof() bool { return p.pos >= len(p.toks) }

func (p *qparser) peek() string {
	if p.eof() {
		return "<eof>"
	}
	return p.toks[p.pos].text
}

func (p *qparser) accept(text string) bool {
	if !p.eof() && !p.toks[p.pos].isString && p.toks[p.pos].text == text {
		p.pos++
		return true
	}
	return false
}

func (p *qparser) value() (string, error) {
	if p.eof() {
		return "", fmt.Errorf("query: expected value, found end of input")
	}
	t := p.toks[p.pos]
	if !t.isString && strings.ContainsAny(t.text, "()=~") {
		return "", fmt.Errorf("query: expected value, found %q", t.text)
	}
	p.pos++
	// Allow ns::name:version refs: join colon-separated word tokens.
	for !t.isString && !p.eof() && !p.toks[p.pos].isString &&
		(p.toks[p.pos].text == ":" || p.toks[p.pos].text == "::") {
		sep := p.toks[p.pos].text
		p.pos++
		if p.eof() || p.toks[p.pos].isString {
			return "", fmt.Errorf("query: dangling %q in value", sep)
		}
		t.text += sep + p.toks[p.pos].text
		p.pos++
	}
	return t.text, nil
}

func (p *qparser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orExpr{l, r}
	}
	return l, nil
}

func (p *qparser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept("and") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = andExpr{l, r}
	}
	return l, nil
}

func (p *qparser) parseUnary() (Expr, error) {
	if p.accept("not") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{e}, nil
	}
	if p.accept("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, fmt.Errorf("query: expected ')', found %q", p.peek())
		}
		return e, nil
	}
	return p.parsePred()
}

// checkPattern rejects malformed glob patterns at parse time, so a bad
// pattern errors identically whether the planner later routes the
// predicate through an index or a scan.
func checkPattern(op cmpOp, val string) error {
	if op != opMatch {
		return nil
	}
	if _, err := path.Match(val, ""); err != nil {
		return fmt.Errorf("query: bad pattern %q: %w", val, err)
	}
	return nil
}

func (p *qparser) cmp() (cmpOp, error) {
	switch {
	case p.accept("="):
		return opEq, nil
	case p.accept("!="):
		return opNe, nil
	case p.accept("~"):
		return opMatch, nil
	}
	return 0, fmt.Errorf("query: expected comparison operator, found %q", p.peek())
}

func (p *qparser) parsePred() (Expr, error) {
	if p.accept("*") {
		return All, nil
	}
	if p.eof() {
		return nil, fmt.Errorf("query: expected predicate, found end of input")
	}
	head := p.toks[p.pos]
	if head.isString {
		return nil, fmt.Errorf("query: unexpected string %q", head.text)
	}
	switch {
	case head.text == "name":
		p.pos++
		op, err := p.cmp()
		if err != nil {
			return nil, err
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		if err := checkPattern(op, v); err != nil {
			return nil, err
		}
		return namePred{op: op, val: v}, nil

	case strings.HasPrefix(head.text, "attr."):
		key := strings.TrimPrefix(head.text, "attr.")
		if key == "" {
			return nil, fmt.Errorf("query: empty attribute key")
		}
		p.pos++
		op, err := p.cmp()
		if err != nil {
			return nil, err
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		if err := checkPattern(op, v); err != nil {
			return nil, err
		}
		return attrPred{key: key, op: op, val: v}, nil

	case head.text == "type" || head.text == "input" || head.text == "output":
		field := head.text
		p.pos++
		if !p.accept("<=") {
			return nil, fmt.Errorf("query: expected '<=' after %q, found %q", field, p.peek())
		}
		t, err := p.parseTypeExpr()
		if err != nil {
			return nil, err
		}
		return typePred{t: t, output: field == "output", field: field}, nil

	case head.text == "tr":
		p.pos++
		if !p.accept("=") {
			return nil, fmt.Errorf("query: expected '=' after tr, found %q", p.peek())
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		return trPred{ref: v}, nil

	case head.text == "descendantof" || head.text == "ancestorof" ||
		head.text == "consumes" || head.text == "produces":
		rel := head.text
		p.pos++
		if !p.accept("(") {
			return nil, fmt.Errorf("query: expected '(' after %s, found %q", rel, p.peek())
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, fmt.Errorf("query: expected ')' after %s argument, found %q", rel, p.peek())
		}
		return relPred{rel: rel, ds: v}, nil

	case head.text == "derived" || head.text == "materialized" || head.text == "virtual" ||
		head.text == "executed" || head.text == "simple" || head.text == "compound":
		p.pos++
		return flagPred{flag: head.text}, nil
	}
	return nil, fmt.Errorf("query: unknown predicate %q", head.text)
}

// parseTypeExpr parses content[:format[:encoding]] with "_" wildcards,
// or a quoted string in dtype.ParseType's "c;f;e" form.
func (p *qparser) parseTypeExpr() (dtype.Type, error) {
	if p.eof() {
		return dtype.Type{}, fmt.Errorf("query: expected type, found end of input")
	}
	if p.toks[p.pos].isString {
		t, err := dtype.ParseType(p.toks[p.pos].text)
		if err != nil {
			return dtype.Type{}, err
		}
		p.pos++
		return t, nil
	}
	var t dtype.Type
	for i, d := range dtype.Dimensions() {
		if p.eof() {
			return dtype.Type{}, fmt.Errorf("query: truncated type expression")
		}
		name := p.toks[p.pos].text
		p.pos++
		if i == 0 && name == "Dataset" {
			// The untyped base type, matching everything.
			return dtype.Universal, nil
		}
		if name != "_" {
			t = t.With(d, name)
		}
		if i == len(dtype.Dimensions())-1 || !p.accept(":") {
			break
		}
	}
	return t, nil
}
