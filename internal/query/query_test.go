package query

import (
	"strings"
	"testing"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// fixture builds a catalog with a small SDSS-flavoured world:
//
//	raw1, raw2 (primary, FITS-file, materialized)
//	brg1 = brgSearch(raw1); brg2 = brgSearch(raw2)
//	clusters = bcgSearch(brg1, brg2)   [executed]
func fixture(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New(dtype.StandardRegistry())

	brgSearch := schema.Transformation{
		Namespace: "sdss", Name: "brgSearch", Kind: schema.Simple, Exec: "/bin/brg",
		Args: []schema.FormalArg{
			{Name: "out", Direction: schema.Out, Types: []dtype.Type{{Content: "Object-map"}}},
			{Name: "in", Direction: schema.In, Types: []dtype.Type{{Content: "FITS-file"}}},
		},
		Attrs: schema.Attributes{"author": "annis"},
	}
	bcgSearch := schema.Transformation{
		Namespace: "sdss", Name: "bcgSearch", Kind: schema.Simple, Exec: "/bin/bcg",
		Args: []schema.FormalArg{
			{Name: "out", Direction: schema.Out},
			{Name: "in1", Direction: schema.In, Types: []dtype.Type{{Content: "Object-map"}}},
			{Name: "in2", Direction: schema.In, Types: []dtype.Type{{Content: "Object-map"}}},
		},
	}
	pipeline := schema.Transformation{
		Namespace: "sdss", Name: "pipeline", Kind: schema.Compound,
		Args: []schema.FormalArg{
			{Name: "in", Direction: schema.In},
			{Name: "out", Direction: schema.Out},
		},
		Calls: []schema.Call{{TR: "sdss::brgSearch", Bindings: map[string]schema.Actual{
			"out": schema.FormalRefActual("out"), "in": schema.FormalRefActual("in"),
		}}},
	}
	for _, tr := range []schema.Transformation{brgSearch, bcgSearch, pipeline} {
		if err := c.AddTransformation(tr); err != nil {
			t.Fatal(err)
		}
	}
	for i, name := range []string{"raw1", "raw2"} {
		if err := c.AddDataset(schema.Dataset{
			Name: name, Type: dtype.Type{Content: "FITS-file", Format: "Simple"},
			Descriptor: schema.FileDescriptor{Path: "/sdss/" + name},
			Attrs:      schema.Attributes{"owner": "annis", "stripe": []string{"10", "82"}[i]},
		}); err != nil {
			t.Fatal(err)
		}
		if err := c.AddReplica(schema.Replica{ID: "r-" + name, Dataset: name, Site: "fnal", PFN: "/store/" + name}); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]string{{"raw1", "brg1"}, {"raw2", "brg2"}} {
		c.AddDataset(schema.Dataset{Name: pair[1], Type: dtype.Type{Content: "Object-map"}})
		if _, err := c.AddDerivation(schema.Derivation{TR: "sdss::brgSearch", Params: map[string]schema.Actual{
			"out": schema.DatasetActual("output", pair[1]),
			"in":  schema.DatasetActual("input", pair[0]),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	final, err := c.AddDerivation(schema.Derivation{TR: "sdss::bcgSearch", Params: map[string]schema.Actual{
		"out": schema.DatasetActual("output", "clusters"),
		"in1": schema.DatasetActual("input", "brg1"),
		"in2": schema.DatasetActual("input", "brg2"),
	}, Attrs: schema.Attributes{"campaign": "dr1"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddInvocation(schema.Invocation{
		ID: "iv-final", Derivation: final.ID,
		Start: time.Unix(0, 0), End: time.Unix(60, 0), Site: "anl",
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func names(res Results) string {
	var out []string
	for _, d := range res.Datasets {
		out = append(out, d.Name)
	}
	for _, tr := range res.Transformations {
		out = append(out, tr.Ref())
	}
	for _, dv := range res.Derivations {
		out = append(out, dv.TR)
	}
	return strings.Join(out, ",")
}

func search(t testing.TB, c *catalog.Catalog, kind Kind, q string) Results {
	t.Helper()
	res, err := Search(c, kind, q)
	if err != nil {
		t.Fatalf("Search(%q): %v", q, err)
	}
	return res
}

func TestDatasetQueries(t *testing.T) {
	c := fixture(t)
	cases := []struct {
		q    string
		want string
	}{
		{`*`, "brg1,brg2,clusters,raw1,raw2"},
		{`name = raw1`, "raw1"},
		{`name ~ "raw*"`, "raw1,raw2"},
		{`name != raw1 and name ~ "raw*"`, "raw2"},
		{`attr.owner = annis`, "raw1,raw2"},
		{`attr.owner = "annis" and attr.stripe = "82"`, "raw2"},
		{`attr.missing = x`, ""},
		{`type <= FITS-file`, "raw1,raw2"},
		{`type <= SDSS`, "brg1,brg2,raw1,raw2"}, // Object-map and FITS-file are both SDSS
		{`type <= "SDSS;Fileset"`, "raw1,raw2"}, // format narrows to Simple⊂Fileset
		{`derived`, "brg1,brg2,clusters"},
		{`not derived`, "raw1,raw2"},
		{`materialized`, "raw1,raw2"},
		{`virtual`, "brg1,brg2,clusters"}, // derived, no replicas yet
		{`descendantof(raw1)`, "brg1,clusters"},
		{`ancestorof(clusters)`, "brg1,brg2,raw1,raw2"},
		{`descendantof(raw1) and descendantof(raw2)`, "clusters"},
		{`derived or name = raw1`, "brg1,brg2,clusters,raw1"},
		{`not (derived or name = raw1)`, "raw2"},
	}
	for _, tc := range cases {
		if got := names(search(t, c, KDataset, tc.q)); got != tc.want {
			t.Errorf("%q:\n got %q\nwant %q", tc.q, got, tc.want)
		}
	}
}

func TestTransformationQueries(t *testing.T) {
	c := fixture(t)
	cases := []struct {
		q    string
		want string
	}{
		{`input <= FITS-file`, "sdss::brgSearch"},
		{`input <= Object-map`, "sdss::bcgSearch"},
		{`output <= Object-map`, "sdss::brgSearch"},
		{`compound`, "sdss::pipeline"},
		{`simple`, "sdss::bcgSearch,sdss::brgSearch"},
		{`attr.author = annis`, "sdss::brgSearch"},
		{`name ~ "sdss::b*"`, "sdss::bcgSearch,sdss::brgSearch"},
		// Untyped formals accept the universal type.
		{`input <= Dataset`, "sdss::bcgSearch,sdss::brgSearch,sdss::pipeline"},
	}
	for _, tc := range cases {
		if got := names(search(t, c, KTransformation, tc.q)); got != tc.want {
			t.Errorf("%q:\n got %q\nwant %q", tc.q, got, tc.want)
		}
	}
}

func TestDerivationQueries(t *testing.T) {
	c := fixture(t)
	cases := []struct {
		q    string
		want int
	}{
		{`tr = sdss::brgSearch`, 2},
		{`tr = sdss::bcgSearch`, 1},
		{`consumes(raw1)`, 1},
		{`produces(clusters)`, 1},
		{`executed`, 1},
		{`not executed`, 2},
		{`attr.campaign = dr1`, 1},
		{`consumes(brg1) and consumes(brg2)`, 1},
	}
	for _, tc := range cases {
		res := search(t, c, KDerivation, tc.q)
		if len(res.Derivations) != tc.want {
			t.Errorf("%q: got %d derivations, want %d", tc.q, len(res.Derivations), tc.want)
		}
	}
}

func TestTRVersionlessMatch(t *testing.T) {
	c := catalog.New(nil)
	tr := schema.Transformation{Name: "sim", Version: "1.3", Kind: schema.Simple, Exec: "/bin/sim",
		Args: []schema.FormalArg{{Name: "o", Direction: schema.Out}, {Name: "i", Direction: schema.In}}}
	if err := c.AddTransformation(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDerivation(schema.Derivation{TR: "sim:1.3", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", "o1"), "i": schema.DatasetActual("input", "i1"),
	}}); err != nil {
		t.Fatal(err)
	}
	res := search(t, c, KDerivation, `tr = sim`)
	if len(res.Derivations) != 1 {
		t.Errorf("versionless tr match: %d", len(res.Derivations))
	}
	res = search(t, c, KDerivation, `tr = sim:1.4`)
	if len(res.Derivations) != 0 {
		t.Errorf("wrong version matched: %d", len(res.Derivations))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`name`,
		`name =`,
		`name >> x`,
		`attr. = x`,
		`(name = x`,
		`name = x )`,
		`bogus = 3`,
		`type <=`,
		`descendantof raw1`,
		`descendantof(raw1`,
		`"quoted head"`,
		`tr sim`,
		`not`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted invalid query %q", q)
		}
	}
}

func TestRunErrors(t *testing.T) {
	c := fixture(t)
	// Relationship against unknown dataset surfaces the catalog error.
	if _, err := Search(c, KDataset, `descendantof(ghost)`); err == nil {
		t.Error("unknown dataset in relationship accepted")
	}
	// Bad glob pattern surfaces at eval time.
	if _, err := Search(c, KDataset, `name ~ "[unclosed"`); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := Run(c, Kind(42), All); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestExprStringReparses(t *testing.T) {
	queries := []string{
		`name = raw1`,
		`name ~ "raw*" and not derived`,
		`(attr.owner = annis or materialized) and type <= SDSS`,
		`descendantof(raw1) or ancestorof(clusters)`,
		`tr = sdss::brgSearch`,
		`executed`,
	}
	c := fixture(t)
	for _, q := range queries {
		e, err := Parse(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", e.String(), q, err)
		}
		// Semantic check: both run to the same result.
		r1, err := Run(c, KDataset, e)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(c, KDataset, e2)
		if err != nil {
			t.Fatal(err)
		}
		if names(r1) != names(r2) {
			t.Errorf("%q: round-tripped expression differs: %q vs %q", q, names(r1), names(r2))
		}
	}
}

func TestVirtualVsMaterializedSearch(t *testing.T) {
	// The paper: "users may wish to search for data that may exist as
	// data and/or in terms of recipes for generating that data."
	c := fixture(t)
	// clusters exists only as a recipe.
	res := search(t, c, KDataset, `name = clusters and virtual`)
	if len(res.Datasets) != 1 {
		t.Fatal("clusters should be virtual")
	}
	// Materialize it; it is no longer virtual.
	if err := c.AddReplica(schema.Replica{ID: "r-cl", Dataset: "clusters", Site: "anl", PFN: "/c"}); err != nil {
		t.Fatal(err)
	}
	res = search(t, c, KDataset, `name = clusters and virtual`)
	if len(res.Datasets) != 0 {
		t.Error("materialized dataset still reported virtual")
	}
	res = search(t, c, KDataset, `name = clusters and materialized and derived`)
	if len(res.Datasets) != 1 {
		t.Error("materialized derived search failed")
	}
}
