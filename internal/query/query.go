// Package query implements the discovery facet of the virtual data
// grid: a small predicate language evaluated against a virtual data
// catalog, covering conventional metadata search plus the paper's "added
// wrinkle" that attributes of interest may refer to derivation
// relationships (ancestry, consumption, production) and to whether data
// exists as bytes or only as a recipe.
//
// Example queries:
//
//	type <= CMS and attr.owner = "annis" and not materialized
//	name ~ "run1.*" and descendantof(raw07)
//	kind = compound or output <= FITS-file
//	tr = sdss::brgSearch and executed
//
// One grammar serves the three searchable object classes; predicates
// that do not apply to a class simply evaluate false for it.
package query

import (
	"context"
	"fmt"
	"path"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// Kind selects the object class a query runs against.
type Kind int

const (
	// KDataset searches datasets.
	KDataset Kind = iota
	// KTransformation searches transformations.
	KTransformation
	// KDerivation searches derivations.
	KDerivation
)

// Expr is a parsed query expression.
type Expr interface {
	// eval evaluates the expression against one object in context.
	eval(ctx *evalCtx, obj object) (bool, error)
	// String renders the expression in re-parseable form.
	String() string
}

// object is the uniform view of a searchable catalog object.
type object struct {
	kind Kind
	ds   *schema.Dataset
	tr   *schema.Transformation
	dv   *schema.Derivation
}

func (o object) name() string {
	switch o.kind {
	case KDataset:
		return o.ds.Name
	case KTransformation:
		return o.tr.Ref()
	default:
		if o.dv.Name != "" {
			return o.dv.Name
		}
		return o.dv.ID
	}
}

func (o object) attrs() schema.Attributes {
	switch o.kind {
	case KDataset:
		return o.ds.Attrs
	case KTransformation:
		return o.tr.Attrs
	default:
		return o.dv.Attrs
	}
}

// evalCtx carries the snapshot a query runs against and caches closure
// lookups during the run. Everything flows through the catalog View, so
// one query takes the catalog lock exactly once (Run acquires it,
// Close releases it) instead of once per object per predicate.
type evalCtx struct {
	view *catalog.View
	// descCache memoizes descendant closures keyed by dataset.
	descCache map[string]map[string]bool
	ancCache  map[string]map[string]bool
}

func newEvalCtx(v *catalog.View) *evalCtx {
	return &evalCtx{
		view:      v,
		descCache: make(map[string]map[string]bool),
		ancCache:  make(map[string]map[string]bool),
	}
}

func (ctx *evalCtx) descendants(ds string) (map[string]bool, error) {
	if m, ok := ctx.descCache[ds]; ok {
		return m, nil
	}
	cl, err := ctx.view.Descendants(ds)
	if err != nil {
		return nil, err
	}
	m := make(map[string]bool, len(cl.Datasets))
	for _, d := range cl.Datasets {
		m[d] = true
	}
	ctx.descCache[ds] = m
	return m, nil
}

func (ctx *evalCtx) ancestors(ds string) (map[string]bool, error) {
	if m, ok := ctx.ancCache[ds]; ok {
		return m, nil
	}
	cl, err := ctx.view.Ancestors(ds)
	if err != nil {
		return nil, err
	}
	m := make(map[string]bool, len(cl.Datasets))
	for _, d := range cl.Datasets {
		m[d] = true
	}
	ctx.ancCache[ds] = m
	return m, nil
}

// Results of a query run.
type Results struct {
	Datasets        []schema.Dataset
	Transformations []schema.Transformation
	Derivations     []schema.Derivation
}

// Run evaluates the expression against every object of the given kind
// in the catalog, using the predicate planner: indexable conjuncts
// resolve to candidate sets from the catalog's secondary indexes and
// only the residual predicates are evaluated per candidate. Queries
// with no indexable conjunct fall back to a snapshot scan.
func Run(c *catalog.Catalog, kind Kind, e Expr) (Results, error) {
	return run(context.Background(), c, kind, e, false)
}

// RunContext is Run under a caller context: when the context carries a
// tracer, the execution records a query span (planner path, candidate
// count) into the caller's trace.
func RunContext(ctx context.Context, c *catalog.Catalog, kind Kind, e Expr) (Results, error) {
	return run(ctx, c, kind, e, false)
}

// RunScan evaluates the expression by full snapshot scan, bypassing the
// planner. It exists for the A3 ablation and for equivalence tests; the
// results are identical to Run's.
func RunScan(c *catalog.Catalog, kind Kind, e Expr) (Results, error) {
	return run(context.Background(), c, kind, e, true)
}

// RunOracle evaluates the expression against a LockedView — every shard
// read lock held for the duration, reading the live write sides — and
// never consults the result cache. It is the ordered-snapshot oracle
// the lock-free cached path is proven equivalent to (the -race
// equivalence storm, the E18 locked arm, and vds's LockedReads option
// all run through here).
func RunOracle(c *catalog.Catalog, kind Kind, e Expr) (Results, error) {
	v := c.LockedView()
	defer v.Close()
	res, _, err := evalView(v, kind, e, false)
	return res, err
}

// SearchOracle parses and runs a query through RunOracle.
func SearchOracle(c *catalog.Catalog, kind Kind, src string) (Results, error) {
	e, err := Parse(src)
	if err != nil {
		return Results{}, err
	}
	return RunOracle(c, kind, e)
}

// Search parses and runs a query in one step.
func Search(c *catalog.Catalog, kind Kind, src string) (Results, error) {
	return SearchContext(context.Background(), c, kind, src)
}

// SearchContext parses and runs a query in one step under ctx.
func SearchContext(ctx context.Context, c *catalog.Catalog, kind Kind, src string) (Results, error) {
	e, err := Parse(src)
	if err != nil {
		return Results{}, err
	}
	return RunContext(ctx, c, kind, e)
}

// --- Expression nodes --------------------------------------------------

type andExpr struct{ l, r Expr }

func (e andExpr) eval(ctx *evalCtx, o object) (bool, error) {
	ok, err := e.l.eval(ctx, o)
	if err != nil || !ok {
		return false, err
	}
	return e.r.eval(ctx, o)
}

func (e andExpr) String() string { return fmt.Sprintf("(%s and %s)", e.l, e.r) }

type orExpr struct{ l, r Expr }

func (e orExpr) eval(ctx *evalCtx, o object) (bool, error) {
	ok, err := e.l.eval(ctx, o)
	if err != nil || ok {
		return ok, err
	}
	return e.r.eval(ctx, o)
}

func (e orExpr) String() string { return fmt.Sprintf("(%s or %s)", e.l, e.r) }

type notExpr struct{ e Expr }

func (e notExpr) eval(ctx *evalCtx, o object) (bool, error) {
	ok, err := e.e.eval(ctx, o)
	return !ok, err
}

func (e notExpr) String() string { return fmt.Sprintf("not %s", e.e) }

// cmpOp is a comparison operator on strings.
type cmpOp int

const (
	opEq cmpOp = iota
	opNe
	opMatch // glob pattern match (~)
)

func (op cmpOp) apply(lhs, rhs string) (bool, error) {
	switch op {
	case opEq:
		return lhs == rhs, nil
	case opNe:
		return lhs != rhs, nil
	case opMatch:
		ok, err := path.Match(rhs, lhs)
		if err != nil {
			return false, fmt.Errorf("query: bad pattern %q: %w", rhs, err)
		}
		return ok, nil
	}
	return false, fmt.Errorf("query: bad operator")
}

func (op cmpOp) String() string {
	switch op {
	case opNe:
		return "!="
	case opMatch:
		return "~"
	default:
		return "="
	}
}

// namePred compares the object's name.
type namePred struct {
	op  cmpOp
	val string
}

func (p namePred) eval(_ *evalCtx, o object) (bool, error) { return p.op.apply(o.name(), p.val) }
func (p namePred) String() string                          { return fmt.Sprintf("name %s %q", p.op, p.val) }

// attrPred compares a metadata attribute.
type attrPred struct {
	key string
	op  cmpOp
	val string
}

func (p attrPred) eval(_ *evalCtx, o object) (bool, error) {
	v, ok := o.attrs()[p.key]
	if !ok {
		return false, nil
	}
	return p.op.apply(v, p.val)
}

func (p attrPred) String() string { return fmt.Sprintf("attr.%s %s %q", p.key, p.op, p.val) }

// typePred tests dataset-type conformance: for datasets, the dataset's
// own type; for transformations, whether any input (or output, when
// output is set) formal accepts the type.
type typePred struct {
	t      dtype.Type
	output bool // for transformations: match output formals instead
	field  string
}

func (p typePred) eval(ctx *evalCtx, o object) (bool, error) {
	reg := ctx.view.Types()
	switch o.kind {
	case KDataset:
		if p.field != "type" {
			return false, nil
		}
		return reg.Conforms(o.ds.Type, p.t), nil
	case KTransformation:
		for _, f := range o.tr.Args {
			if !f.IsDataset() {
				continue
			}
			if p.output && !f.Direction.Writes() {
				continue
			}
			if !p.output && p.field == "input" && !f.Direction.Reads() {
				continue
			}
			if len(f.Types) == 0 {
				if p.t.IsUniversal() {
					return true, nil
				}
				continue
			}
			for _, ft := range f.Types {
				if reg.Conforms(ft, p.t) {
					return true, nil
				}
			}
		}
		return false, nil
	default:
		return false, nil
	}
}

func (p typePred) String() string { return fmt.Sprintf("%s <= %q", p.field, p.t) }

// flagPred tests boolean object properties.
type flagPred struct{ flag string }

func (p flagPred) eval(ctx *evalCtx, o object) (bool, error) {
	switch p.flag {
	case "derived":
		return o.kind == KDataset && o.ds.CreatedBy != "", nil
	case "materialized":
		return o.kind == KDataset && ctx.view.Materialized(o.ds.Name), nil
	case "virtual":
		// Exists only as a recipe: derived but not materialized.
		return o.kind == KDataset && o.ds.CreatedBy != "" && !ctx.view.Materialized(o.ds.Name), nil
	case "executed":
		// Set membership, not a copy of the invocation records.
		return o.kind == KDerivation && ctx.view.HasInvocations(o.dv.ID), nil
	case "compound":
		return o.kind == KTransformation && o.tr.Kind == schema.Compound, nil
	case "simple":
		return o.kind == KTransformation && o.tr.Kind == schema.Simple, nil
	}
	return false, fmt.Errorf("query: unknown flag %q", p.flag)
}

func (p flagPred) String() string { return p.flag }

// trPred matches derivations of a transformation (exact ref, or any
// version of ns::name when the ref is unversioned).
type trPred struct{ ref string }

func (p trPred) eval(_ *evalCtx, o object) (bool, error) {
	if o.kind != KDerivation {
		return false, nil
	}
	if o.dv.TR == p.ref {
		return true, nil
	}
	ns1, n1, _, err1 := schema.ParseTRRef(o.dv.TR)
	ns2, n2, v2, err2 := schema.ParseTRRef(p.ref)
	if err1 != nil || err2 != nil {
		return false, nil
	}
	return v2 == "" && ns1 == ns2 && n1 == n2, nil
}

func (p trPred) String() string { return fmt.Sprintf("tr = %s", p.ref) }

// relPred tests derivation relationships.
type relPred struct {
	rel string // "descendantof", "ancestorof", "consumes", "produces"
	ds  string
}

func (p relPred) eval(ctx *evalCtx, o object) (bool, error) {
	switch p.rel {
	case "descendantof":
		if o.kind != KDataset {
			return false, nil
		}
		m, err := ctx.descendants(p.ds)
		if err != nil {
			return false, err
		}
		return m[o.ds.Name], nil
	case "ancestorof":
		if o.kind != KDataset {
			return false, nil
		}
		m, err := ctx.ancestors(p.ds)
		if err != nil {
			return false, err
		}
		return m[o.ds.Name], nil
	case "consumes":
		// Membership against the snapshot's IO index: no DerivationIO
		// slice copies, no extra lock round-trip.
		return o.kind == KDerivation && ctx.view.Consumes(o.dv.ID, p.ds), nil
	case "produces":
		return o.kind == KDerivation && ctx.view.Produces(o.dv.ID, p.ds), nil
	}
	return false, fmt.Errorf("query: unknown relationship %q", p.rel)
}

func (p relPred) String() string { return fmt.Sprintf("%s(%s)", p.rel, p.ds) }

// truePred matches everything ("*").
type truePred struct{}

func (truePred) eval(*evalCtx, object) (bool, error) { return true, nil }
func (truePred) String() string                      { return "*" }

// All is the expression matching every object.
var All Expr = truePred{}
