package query

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// Property: Parse never panics and, when it accepts an input, the
// parsed expression's String() form re-parses to an expression with
// identical evaluation behaviour on a fixed fixture.
func TestParseTotalQuick(t *testing.T) {
	c := fixture(t)
	f := func(src string) bool {
		e, err := Parse(src)
		if err != nil {
			return true
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Logf("unparseable round trip: %q -> %q", src, e.String())
			return false
		}
		r1, err1 := Run(c, KDataset, e)
		r2, err2 := Run(c, KDataset, e2)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return names(r1) == names(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: boolean algebra holds — for random pairs of valid
// predicates p, q: "p and q" ⊆ "p" ⊆ "p or q", and "not (not p)" = p.
func TestBooleanAlgebraProperty(t *testing.T) {
	c := fixture(t)
	preds := []string{
		`derived`, `materialized`, `virtual`,
		`name ~ "raw*"`, `name ~ "brg*"`, `type <= SDSS`,
		`attr.owner = annis`, `descendantof(raw1)`, `ancestorof(clusters)`,
	}
	members := func(q string) map[string]bool {
		res := search(t, c, KDataset, q)
		m := make(map[string]bool)
		for _, d := range res.Datasets {
			m[d.Name] = true
		}
		return m
	}
	for _, p := range preds {
		for _, q := range preds {
			both := members("(" + p + ") and (" + q + ")")
			either := members("(" + p + ") or (" + q + ")")
			pm := members(p)
			for name := range both {
				if !pm[name] {
					t.Fatalf("AND not subset: %q with %q yields %s not in %q", p, q, name, p)
				}
			}
			for name := range pm {
				if !either[name] {
					t.Fatalf("OR not superset: %s in %q missing from union with %q", name, p, q)
				}
			}
		}
		doubleNeg := members("not (not (" + p + "))")
		pm := members(p)
		if len(doubleNeg) != len(pm) {
			t.Fatalf("double negation changed %q: %d vs %d", p, len(doubleNeg), len(pm))
		}
	}
}

// randomCatalog builds a seeded pseudo-random catalog: a small type
// hierarchy, primary datasets with random types/attrs/replicas, a chain
// of derivations over random inputs, random invocations, and random
// epoch bumps (with and without restamp).
func randomCatalog(t testing.TB, r *rand.Rand) *catalog.Catalog {
	t.Helper()
	c := catalog.New(nil)
	for _, def := range [][2]string{{"root", ""}, {"mid", "root"}, {"leaf", "mid"}, {"other", ""}} {
		if err := c.DefineType(dtype.Content, def[0], def[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddTransformation(schema.Transformation{
		Namespace: "t", Name: "gen", Kind: schema.Simple, Exec: "/bin/gen",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		}}); err != nil {
		t.Fatal(err)
	}

	contents := []string{"root", "mid", "leaf", "other", ""}
	names := make([]string, 0, 16)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("ds%d", i)
		ds := schema.Dataset{Name: name, Type: dtype.Type{Content: contents[r.Intn(len(contents))]}}
		if r.Intn(2) == 0 {
			ds.Attrs = schema.Attributes{"owner": []string{"ann", "bob"}[r.Intn(2)]}
			if r.Intn(2) == 0 {
				ds.Attrs["batch"] = []string{"x", "y"}[r.Intn(2)]
			}
		}
		if err := c.AddDataset(ds); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	for i := 0; i < 10; i++ {
		out := fmt.Sprintf("o%d", i)
		dv, err := c.AddDerivation(schema.Derivation{TR: "t::gen", Params: map[string]schema.Actual{
			"o": schema.DatasetActual("output", out),
			"i": schema.DatasetActual("input", names[r.Intn(len(names))]),
		}})
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, out)
		if r.Intn(3) == 0 {
			if err := c.AddInvocation(schema.Invocation{ID: "iv-" + out, Derivation: dv.ID}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, name := range names {
		if r.Intn(3) == 0 {
			if err := c.AddReplica(schema.Replica{
				ID: fmt.Sprintf("r%d", i), Dataset: name, Site: "s", PFN: "/" + name,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, name := range names {
		if r.Intn(4) == 0 {
			if _, err := c.BumpEpoch(name, r.Intn(2) == 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

// randExprSrc generates a random query over objects that exist in
// randomCatalog's world, so evaluation never errors and differences
// between the planner and the scan are pure result differences.
func randExprSrc(r *rand.Rand, depth int) string {
	atoms := []string{
		`*`,
		fmt.Sprintf("name = ds%d", r.Intn(8)),
		fmt.Sprintf("name = o%d", r.Intn(10)),
		`name = nosuch`,
		`name ~ "ds*"`,
		`name != ds0`,
		fmt.Sprintf("attr.owner = %s", []string{"ann", "bob"}[r.Intn(2)]),
		`attr.batch = x`,
		`attr.missing = z`,
		`type <= root`,
		`type <= mid`,
		`type <= other`,
		`type <= Dataset`,
		`derived`, `materialized`, `virtual`, `executed`, `simple`, `compound`,
		`tr = t::gen`, `tr = t`, `tr = nosuch::tr`,
		fmt.Sprintf("consumes(ds%d)", r.Intn(8)),
		fmt.Sprintf("produces(o%d)", r.Intn(10)),
		fmt.Sprintf("descendantof(ds%d)", r.Intn(8)),
		fmt.Sprintf("ancestorof(o%d)", r.Intn(10)),
	}
	if depth <= 0 || r.Intn(3) == 0 {
		return atoms[r.Intn(len(atoms))]
	}
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s and %s)", randExprSrc(r, depth-1), randExprSrc(r, depth-1))
	case 1:
		return fmt.Sprintf("(%s or %s)", randExprSrc(r, depth-1), randExprSrc(r, depth-1))
	case 2:
		return fmt.Sprintf("not (%s)", randExprSrc(r, depth-1))
	default: // deeper AND chains give the planner more conjuncts to pull
		return fmt.Sprintf("(%s and %s and %s)",
			randExprSrc(r, depth-1), randExprSrc(r, depth-1), randExprSrc(r, depth-1))
	}
}

// Property: for random catalogs and random expression trees, the
// planner's indexed path and the forced full scan return identical
// results (objects and order) for every object kind.
func TestIndexScanEquivalenceQuick(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		c := randomCatalog(t, r)
		if err := c.CheckIndexes(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 0; i < 50; i++ {
			src := randExprSrc(r, 3)
			e, err := Parse(src)
			if err != nil {
				t.Fatalf("seed %d: generated unparseable query %q: %v", seed, src, err)
			}
			for _, kind := range []Kind{KDataset, KTransformation, KDerivation} {
				idx, err1 := Run(c, kind, e)
				scan, err2 := RunScan(c, kind, e)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed %d kind %d %q: index err %v, scan err %v", seed, kind, src, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if resKey(idx) != resKey(scan) {
					t.Fatalf("seed %d kind %d %q:\n index %q\n scan  %q",
						seed, kind, src, resKey(idx), resKey(scan))
				}
			}
		}
	}
}

func BenchmarkSearchDatasets(b *testing.B) {
	c := fixture(b)
	e, err := Parse(`derived and descendantof(raw1) and type <= SDSS`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, KDataset, e); err != nil {
			b.Fatal(err)
		}
	}
}
