package query

import (
	"testing"
	"testing/quick"
)

// Property: Parse never panics and, when it accepts an input, the
// parsed expression's String() form re-parses to an expression with
// identical evaluation behaviour on a fixed fixture.
func TestParseTotalQuick(t *testing.T) {
	c := fixture(t)
	f := func(src string) bool {
		e, err := Parse(src)
		if err != nil {
			return true
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Logf("unparseable round trip: %q -> %q", src, e.String())
			return false
		}
		r1, err1 := Run(c, KDataset, e)
		r2, err2 := Run(c, KDataset, e2)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return names(r1) == names(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: boolean algebra holds — for random pairs of valid
// predicates p, q: "p and q" ⊆ "p" ⊆ "p or q", and "not (not p)" = p.
func TestBooleanAlgebraProperty(t *testing.T) {
	c := fixture(t)
	preds := []string{
		`derived`, `materialized`, `virtual`,
		`name ~ "raw*"`, `name ~ "brg*"`, `type <= SDSS`,
		`attr.owner = annis`, `descendantof(raw1)`, `ancestorof(clusters)`,
	}
	members := func(q string) map[string]bool {
		res := search(t, c, KDataset, q)
		m := make(map[string]bool)
		for _, d := range res.Datasets {
			m[d.Name] = true
		}
		return m
	}
	for _, p := range preds {
		for _, q := range preds {
			both := members("(" + p + ") and (" + q + ")")
			either := members("(" + p + ") or (" + q + ")")
			pm := members(p)
			for name := range both {
				if !pm[name] {
					t.Fatalf("AND not subset: %q with %q yields %s not in %q", p, q, name, p)
				}
			}
			for name := range pm {
				if !either[name] {
					t.Fatalf("OR not superset: %s in %q missing from union with %q", name, p, q)
				}
			}
		}
		doubleNeg := members("not (not (" + p + "))")
		pm := members(p)
		if len(doubleNeg) != len(pm) {
			t.Fatalf("double negation changed %q: %d vs %d", p, len(doubleNeg), len(pm))
		}
	}
}

func BenchmarkSearchDatasets(b *testing.B) {
	c := fixture(b)
	e, err := Parse(`derived and descendantof(raw1) and type <= SDSS`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, KDataset, e); err != nil {
			b.Fatal(err)
		}
	}
}
