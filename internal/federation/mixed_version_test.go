package federation

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/vds"
)

// jsonOnly simulates a pre-negotiation member: its server never sees
// the Accept header, so every export answers JSON — exactly how a
// binary-unaware build behaves.
func jsonOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del("Accept")
		h.ServeHTTP(w, r)
	})
}

// mixedSite spins up one member; legacy strips content negotiation at
// the server, binaryClient opts the crawler's client into the binary
// transport.
func mixedSite(t *testing.T, name string, legacy, binaryClient bool) (*catalog.Catalog, *vds.Client) {
	t.Helper()
	cat := catalog.New(nil)
	var h http.Handler = vds.NewServer(name, cat)
	if legacy {
		h = jsonOnly(h)
	}
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	cl := vds.NewClient(hs.URL)
	cl.Binary = binaryClient
	return cat, cl
}

// TestMixedVersionFederationEquivalence drives randomized mutation
// histories through a federation whose members cover the whole
// negotiation matrix — binary crawler vs JSON-only member, JSON
// crawler vs binary-capable member, binary end-to-end — and requires
// the merged catalog to stay byte-identical to the all-JSON oracle
// after every round.
func TestMixedVersionFederationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	type member struct {
		legacy, binary bool
	}
	members := []member{
		{legacy: true, binary: true},   // binary crawler, JSON-only member: negotiate down
		{legacy: false, binary: false}, // JSON crawler, binary-capable member: stays JSON
		{legacy: false, binary: true},  // binary end-to-end
	}

	mixed := NewIndex("mixed", "test")
	oracle := NewIndex("oracle", "test")
	var muts []*mutator
	for i, m := range members {
		name := fmt.Sprintf("m%d", i)
		cat, client := mixedSite(t, name, m.legacy, m.binary)
		// The oracle crawls the same member over a plain JSON client.
		jsonClient := *client
		jsonClient.Binary = false
		muts = append(muts, &mutator{rng: rng, cat: cat, prefix: name})
		mixed.AddMember(name, client)
		oracle.AddMember(name, &jsonClient)
	}
	// A tight journal window on the binary end-to-end member forces its
	// deltas through the full-export fallback mid-test.
	muts[2].cat.SetJournalWindow(4)

	for round := 0; round < 10; round++ {
		steps := rng.Intn(12)
		for s := 0; s < steps; s++ {
			muts[rng.Intn(len(muts))].step(t)
		}
		if err := mixed.Crawl(); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Crawl(); err != nil {
			t.Fatal(err)
		}
		compareSnapshots(t, round, snap(t, mixed), snap(t, oracle))
	}
}
