package federation

import (
	"net/http/httptest"
	"strings"
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/schema"
	"chimera/internal/vds"
)

func twoArg(name string) schema.Transformation {
	return schema.Transformation{Name: name, Kind: schema.Simple, Exec: "/usr/bin/" + name,
		Args: []schema.FormalArg{
			{Name: "a2", Direction: schema.Out},
			{Name: "a1", Direction: schema.In},
		}}
}

func chainDV(tr, in, out string) schema.Derivation {
	return schema.Derivation{TR: tr, Params: map[string]schema.Actual{
		"a2": schema.DatasetActual("output", out),
		"a1": schema.DatasetActual("input", in),
	}}
}

// site spins up one catalog service.
func site(t *testing.T, name string) (*catalog.Catalog, *vds.Client, func()) {
	t.Helper()
	cat := catalog.New(nil)
	hs := httptest.NewServer(vds.NewServer(name, cat))
	t.Cleanup(hs.Close)
	return cat, vds.NewClient(hs.URL), hs.Close
}

func TestIndexCrawlAndSearch(t *testing.T) {
	catA, clientA, _ := site(t, "groupA")
	catB, clientB, _ := site(t, "groupB")

	catA.AddTransformation(twoArg("simA"))
	catA.AddDataset(schema.Dataset{Name: "rawA", Attrs: schema.Attributes{"owner": "alice"}})
	catB.AddTransformation(twoArg("simB"))
	catB.AddDataset(schema.Dataset{Name: "rawB", Attrs: schema.Attributes{"owner": "bob"}})
	if _, err := catB.AddDerivation(chainDV("simB", "rawB", "derivedB")); err != nil {
		t.Fatal(err)
	}

	ix := NewIndex("collab", "collaboration")
	ix.AddMember("groupA", clientA)
	ix.AddMember("groupB", clientB)
	if err := ix.Crawl(); err != nil {
		t.Fatal(err)
	}
	if ix.Crawls() != 1 {
		t.Error("crawl count")
	}
	if got := ix.Members(); strings.Join(got, ",") != "groupA,groupB" {
		t.Errorf("members: %v", got)
	}

	// Search spans both members, with attribution.
	res, err := ix.SearchDatasets(`attr.owner = alice`)
	if err != nil || len(res) != 1 || res[0].Authority != "groupA" {
		t.Fatalf("search A: %+v %v", res, err)
	}
	if res[0].Ref != "vdp://groupA/rawA" {
		t.Errorf("ref: %s", res[0].Ref)
	}
	res, err = ix.SearchDatasets(`derived`)
	if err != nil || len(res) != 1 || res[0].Name != "derivedB" || res[0].Authority != "groupB" {
		t.Fatalf("derived search: %+v %v", res, err)
	}
	trs, err := ix.SearchTransformations(`name ~ "sim*"`)
	if err != nil || len(trs) != 2 {
		t.Fatalf("tr search: %+v %v", trs, err)
	}

	// Lookup.
	e, ok := ix.Lookup("dataset", "rawB")
	if !ok || e.Authority != "groupB" {
		t.Errorf("lookup: %+v %v", e, ok)
	}
	if _, ok := ix.Lookup("dataset", "ghost"); ok {
		t.Error("ghost lookup")
	}

	// New data appears after recrawl, not before.
	catA.AddDataset(schema.Dataset{Name: "lateA"})
	if _, ok := ix.Lookup("dataset", "lateA"); ok {
		t.Error("index saw data without crawl")
	}
	if err := ix.Crawl(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup("dataset", "lateA"); !ok {
		t.Error("recrawl missed new data")
	}

	// Removing a member drops its entries at next crawl.
	ix.RemoveMember("groupB")
	ix.Crawl()
	if _, ok := ix.Lookup("dataset", "rawB"); ok {
		t.Error("removed member entries persisted")
	}
}

func TestIndexFilterAdmission(t *testing.T) {
	cat, client, _ := site(t, "g")
	cat.AddTransformation(twoArg("t"))
	cat.AddDataset(schema.Dataset{Name: "approved1", Attrs: schema.Attributes{"quality": "approved"}})
	cat.AddDataset(schema.Dataset{Name: "draft1", Attrs: schema.Attributes{"quality": "draft"}})
	if _, err := cat.AddDerivation(chainDV("t", "approved1", "out1")); err != nil {
		t.Fatal(err)
	}

	official := NewIndex("official", "collaboration")
	official.Filter = `attr.quality = approved`
	official.AddMember("g", client)
	if err := official.Crawl(); err != nil {
		t.Fatal(err)
	}
	if _, ok := official.Lookup("dataset", "approved1"); !ok {
		t.Error("approved entry missing")
	}
	if _, ok := official.Lookup("dataset", "draft1"); ok {
		t.Error("draft entry admitted")
	}
	// out1 lacks the quality attr, so the derivation is filtered too.
	if st := official.Stats(); st.Derivations != 0 {
		t.Errorf("filtered derivations: %d", st.Derivations)
	}
}

func TestCrawlSurvivesDeadMember(t *testing.T) {
	catA, clientA, _ := site(t, "alive")
	catA.AddDataset(schema.Dataset{Name: "d"})
	_, clientB, closeB := site(t, "dead")
	ix := NewIndex("x", "group")
	ix.AddMember("alive", clientA)
	ix.AddMember("dead", clientB)
	closeB() // kill the member before crawling
	if err := ix.Crawl(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup("dataset", "d"); !ok {
		t.Error("live member not indexed")
	}
	if ix.MemberError("dead") == nil {
		t.Error("dead member error not recorded")
	}
	if ix.MemberError("alive") != nil {
		t.Errorf("live member error: %v", ix.MemberError("alive"))
	}
}

// TestFigure3DistributedLineage builds the paper's three-tier chain:
// collaboration produces official data from raw; group refines it via a
// vdp link; personal analyzes the group product via another vdp link.
func TestFigure3DistributedLineage(t *testing.T) {
	catC, clientC, _ := site(t, "collab")
	catG, clientG, _ := site(t, "group")
	catP, clientP, _ := site(t, "personal")
	reg2 := vds.NewRegistry()
	reg2.Register("collab", clientC.Base)
	reg2.Register("group", clientG.Base)
	reg2.Register("personal", clientP.Base)

	catC.AddTransformation(twoArg("reconstruct"))
	if _, err := catC.AddDerivation(chainDV("reconstruct", "raw", "official")); err != nil {
		t.Fatal(err)
	}

	catG.AddTransformation(twoArg("skim"))
	if _, err := catG.AddDerivation(chainDV("skim", "vdp://collab/official", "group-skim")); err != nil {
		t.Fatal(err)
	}

	catP.AddTransformation(twoArg("plot"))
	if _, err := catP.AddDerivation(chainDV("plot", "vdp://group/group-skim", "my-histogram")); err != nil {
		t.Fatal(err)
	}

	lin, err := Lineage(reg2, "personal", "my-histogram", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin.Steps) != 3 {
		t.Fatalf("steps: %d (%+v)", len(lin.Steps), lin)
	}
	byAuthority := map[string]int{}
	for _, s := range lin.Steps {
		byAuthority[s.Authority]++
	}
	if byAuthority["personal"] != 1 || byAuthority["group"] != 1 || byAuthority["collab"] != 1 {
		t.Errorf("authorities: %v", byAuthority)
	}
	if len(lin.PrimarySources) != 1 || lin.PrimarySources[0] != "collab:raw" {
		t.Errorf("primaries: %v", lin.PrimarySources)
	}
	if len(lin.Unresolved) != 0 {
		t.Errorf("unresolved: %v", lin.Unresolved)
	}

	// Hop limit stops the walk.
	lin, err = Lineage(reg2, "personal", "my-histogram", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin.Steps) != 2 { // personal + group, collab not followed
		t.Errorf("hop-limited steps: %d", len(lin.Steps))
	}

	// Unknown authority lands in Unresolved, not error.
	catP.AddTransformation(twoArg("t2"))
	if _, err := catP.AddDerivation(chainDV("t2", "vdp://mars/data", "weird")); err != nil {
		t.Fatal(err)
	}
	lin, err = Lineage(reg2, "personal", "weird", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin.Unresolved) != 1 {
		t.Errorf("unresolved: %v", lin.Unresolved)
	}

	// Unknown dataset at the start.
	lin, err = Lineage(reg2, "personal", "ghost", 5)
	if err != nil || len(lin.Unresolved) != 1 {
		t.Errorf("missing start: %+v %v", lin, err)
	}
}
