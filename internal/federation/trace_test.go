package federation

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/obs"
	"chimera/internal/schema"
	"chimera/internal/vds"
)

// tracedSite spins up one catalog service whose server records spans
// into the shared tracer — the in-process stand-in for a federation
// member with its own tracer whose trace files get merged.
func tracedSite(t *testing.T, name string, tracer *obs.Tracer) (*catalog.Catalog, *vds.Client) {
	t.Helper()
	cat := catalog.New(nil)
	srv := vds.NewServer(name, cat)
	srv.Tracer = tracer
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return cat, vds.NewClient(hs.URL)
}

// TestCrawlTraceConnected is the distributed-tracing acceptance test: a
// three-member crawl — one member hanging until its timeout — must
// yield a single causally-connected trace. Every span shares one trace
// ID and every parent link resolves: server spans hang off the client
// fetch spans that caused them (propagated via the traceparent header),
// fetch/rebuild spans hang off the crawl root.
func TestCrawlTraceConnected(t *testing.T) {
	tracer := obs.NewTracer()

	catA, clientA := tracedSite(t, "alpha", tracer)
	catB, clientB := tracedSite(t, "beta", tracer)
	if err := catA.AddDataset(schema.Dataset{Name: "dsA"}); err != nil {
		t.Fatal(err)
	}
	if err := catB.AddDataset(schema.Dataset{Name: "dsB"}); err != nil {
		t.Fatal(err)
	}
	// The third member times out mid-pass: it never answers, so its
	// fetch burns the member timeout and errors — but its fetch span
	// must still be part of the same connected trace.
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(hung.Close)

	ix := NewIndex("traced", "collaboration")
	ix.AddMember("alpha", clientA)
	ix.AddMember("beta", clientB)
	ix.AddMember("hung", vds.NewClient(hung.URL))
	ix.MemberTimeout = 300 * time.Millisecond

	ctx := obs.WithTracer(context.Background(), tracer)
	if err := ix.CrawlContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ix.MemberError("hung"); err == nil {
		t.Fatal("hung member not marked stale")
	}
	if _, ok := ix.Lookup("dataset", "dsA"); !ok {
		t.Fatal("live member not indexed despite hung peer")
	}

	// The live members' server spans End after their responses are
	// already on the wire, so they can be recorded a beat after
	// CrawlContext returns; wait for them.
	deadline := time.Now().Add(2 * time.Second)
	var spans []obs.SpanRecord
	for {
		spans = tracer.Spans()
		if countPrefix(spans, "http ") >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	byID := make(map[int64]obs.SpanRecord, len(spans))
	var root obs.SpanRecord
	roots := 0
	for _, s := range spans {
		byID[s.ID] = s
		if s.Name == "federation.crawl" {
			root = s
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("got %d federation.crawl roots, want 1", roots)
	}
	if root.Parent != 0 {
		t.Errorf("crawl root has parent %d", root.Parent)
	}

	fetches := make(map[string]obs.SpanRecord) // member -> fetch span
	for _, s := range spans {
		if s.Trace != root.Trace {
			t.Errorf("span %q trace %q, want %q (one trace per pass)", s.Name, s.Trace, root.Trace)
		}
		switch {
		case s.Name == "federation.fetch":
			if s.Parent != root.ID {
				t.Errorf("fetch span for %q parented to %d, want crawl root %d", s.Attrs["member"], s.Parent, root.ID)
			}
			fetches[s.Attrs["member"]] = s
		case s.Name == "federation.rebuild" || s.Name == "federation.apply":
			if _, ok := byID[s.Parent]; !ok {
				t.Errorf("%s span parent %d not in trace", s.Name, s.Parent)
			}
		}
	}
	if len(fetches) != 3 {
		t.Fatalf("got fetch spans for %d members, want 3", len(fetches))
	}
	if fetches["hung"].Attrs["error"] == "" {
		t.Error("hung member's fetch span not marked with its timeout error")
	}

	// Every remote server span's parent must resolve to a client fetch
	// span — the traceparent header crossing the HTTP boundary.
	servers := 0
	for _, s := range spans {
		if len(s.Name) < 5 || s.Name[:5] != "http " {
			continue
		}
		servers++
		parent, ok := byID[s.Parent]
		if !ok {
			t.Errorf("server span %q parent %d not recorded", s.Name, s.Parent)
			continue
		}
		if parent.Name != "federation.fetch" {
			t.Errorf("server span %q parented to %q, want a fetch span", s.Name, parent.Name)
		}
	}
	if servers < 2 {
		t.Fatalf("got %d server spans, want one per live member", servers)
	}

	// The whole pass is one tree: every span walks parent links to the
	// crawl root without a break.
	for _, s := range spans {
		cur, hops := s, 0
		for cur.Parent != 0 {
			next, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %q: parent chain breaks at %d", s.Name, cur.Parent)
			}
			cur = next
			if hops++; hops > len(spans) {
				t.Fatalf("span %q: parent cycle", s.Name)
			}
		}
		if cur.ID != root.ID {
			t.Errorf("span %q roots at %q, want federation.crawl", s.Name, cur.Name)
		}
	}
}

func countPrefix(spans []obs.SpanRecord, prefix string) int {
	n := 0
	for _, s := range spans {
		if len(s.Name) >= len(prefix) && s.Name[:len(prefix)] == prefix {
			n++
		}
	}
	return n
}

// TestCrawlTraceSecondPassShared: an unchanged second pass still forms
// its own complete connected trace with a distinct trace ID.
func TestCrawlTraceSecondPassShared(t *testing.T) {
	tracer := obs.NewTracer()
	cat, client := tracedSite(t, "solo", tracer)
	if err := cat.AddDataset(schema.Dataset{Name: "d"}); err != nil {
		t.Fatal(err)
	}
	ix := NewIndex("two-pass", "group")
	ix.AddMember("solo", client)

	ctx := obs.WithTracer(context.Background(), tracer)
	if err := ix.CrawlContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ix.CrawlContext(ctx); err != nil {
		t.Fatal(err)
	}
	traces := make(map[string]bool)
	for _, s := range tracer.Spans() {
		if s.Name == "federation.crawl" {
			traces[s.Trace] = true
		}
	}
	if len(traces) != 2 {
		t.Errorf("two passes produced %d distinct trace IDs, want 2", len(traces))
	}

	// The shard cursors are visible after the passes.
	states := ix.ShardStates()
	if len(states) != 1 || states[0].Authority != "solo" {
		t.Fatalf("shard states = %+v", states)
	}
	if states[0].Seq == 0 || states[0].Gen == 0 || states[0].Gen != states[0].BuiltGen {
		t.Errorf("cursor not advanced/merged: %+v", states[0])
	}
}
