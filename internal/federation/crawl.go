package federation

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/obs"
	"chimera/internal/query"
	"chimera/internal/schema"
	"chimera/internal/vds"
)

// shard is the per-member slice of a federated index: the raw member
// state reconstructed from delta exports, plus the sync cursor needed
// to ask the member for "everything after what I already have". Shards
// are owned by the crawl path (serialized by Index.crawlMu); during the
// fan-out each shard is touched by exactly one worker.
type shard struct {
	// instance and seq form the sync cursor echoed back to the member.
	instance uint64
	seq      uint64

	// gen counts content changes; builtGen is the gen last merged into
	// the shadow. gen != builtGen marks the shard dirty for rebuild.
	gen      uint64
	builtGen uint64

	// Raw member state, applied as upserts from deltas.
	datasets        map[string]schema.Dataset
	transformations map[string]schema.Transformation
	derivations     map[string]schema.Derivation
	invocations     map[string]schema.Invocation
	replicas        map[string]schema.Replica
	types           *dtype.Registry
	compat          []schema.CompatibilityAssertion

	// Cached admission result, valid for (admittedGen, admittedFilter).
	admitted       catalog.Export
	admitErr       error
	admittedGen    uint64
	admittedFilter string
	admittedValid  bool

	// Last crawl outcomes, composed into the index stale map.
	fetchErr   error
	overlapErr error
}

func newShard() *shard {
	return &shard{
		datasets:        make(map[string]schema.Dataset),
		transformations: make(map[string]schema.Transformation),
		derivations:     make(map[string]schema.Derivation),
		invocations:     make(map[string]schema.Invocation),
		replicas:        make(map[string]schema.Replica),
	}
}

// apply folds a delta into the shard. Full deltas reset the shard; the
// records of an incremental delta are upserts (a dataset epoch bump
// ships the whole dataset again), and replica tombstones delete.
func (sh *shard) apply(d catalog.Delta) {
	if d.Full {
		other := newShard()
		sh.datasets = other.datasets
		sh.transformations = other.transformations
		sh.derivations = other.derivations
		sh.invocations = other.invocations
		sh.replicas = other.replicas
		sh.types = nil
		sh.compat = nil
	}
	for _, ds := range d.Export.Datasets {
		sh.datasets[ds.Name] = ds
	}
	for _, tr := range d.Export.Transformations {
		sh.transformations[tr.Ref()] = tr
	}
	for _, dv := range d.Export.Derivations {
		sh.derivations[dv.ID] = dv
	}
	for _, iv := range d.Export.Invocations {
		sh.invocations[iv.ID] = iv
	}
	for _, r := range d.Export.Replicas {
		sh.replicas[r.ID] = r
	}
	for _, tomb := range d.Tombstones {
		if tomb.Kind == "replica" {
			delete(sh.replicas, tomb.ID)
		}
	}
	if d.Export.Types != nil {
		// Deltas carry the member's full registry when any type changed.
		sh.types = d.Export.Types
	}
	if len(d.Export.Compat) > 0 {
		sh.compat = d.Export.Compat
	}
	sh.gen++
	sh.admittedValid = false
}

// export materializes the shard as a sorted catalog export, matching
// what the member's full Export() would contain.
func (sh *shard) export() catalog.Export {
	exp := catalog.Export{Types: sh.types}
	for _, ds := range sh.datasets {
		exp.Datasets = append(exp.Datasets, ds)
	}
	for _, tr := range sh.transformations {
		exp.Transformations = append(exp.Transformations, tr)
	}
	for _, dv := range sh.derivations {
		exp.Derivations = append(exp.Derivations, dv)
	}
	for _, iv := range sh.invocations {
		exp.Invocations = append(exp.Invocations, iv)
	}
	for _, r := range sh.replicas {
		exp.Replicas = append(exp.Replicas, r)
	}
	exp.Compat = append([]schema.CompatibilityAssertion(nil), sh.compat...)
	exp.Sort()
	return exp
}

// admittedExport returns the shard's post-admission view, memoized on
// (gen, filter) so unchanged members pay for filtering once, not once
// per rebuild.
func (sh *shard) admittedExport(filterExpr query.Expr, filter string) (catalog.Export, error) {
	if sh.admittedValid && sh.admittedGen == sh.gen && sh.admittedFilter == filter {
		admitHit.Inc()
		return sh.admitted, sh.admitErr
	}
	admitMiss.Inc()
	sh.admitted, sh.admitErr = admit(sh.export(), filterExpr)
	sh.admittedGen = sh.gen
	sh.admittedFilter = filter
	sh.admittedValid = true
	return sh.admitted, sh.admitErr
}

// staleErr composes the member's stale-map entry from last outcomes.
func (sh *shard) staleErr() error {
	switch {
	case sh.fetchErr != nil:
		return sh.fetchErr
	case sh.admitErr != nil && sh.admittedValid:
		return sh.admitErr
	default:
		return sh.overlapErr
	}
}

// crawlDelta is the incremental parallel crawl: fan out bounded workers
// that pull per-member deltas into shards, then merge dirty shards into
// a fresh shadow. When nothing changed anywhere, the pass costs one
// round-trip per member and zero re-imports.
func (ix *Index) crawlDelta(ctx context.Context) error {
	ix.mu.Lock()
	members := make(map[string]*vds.Client, len(ix.members))
	for a, c := range ix.members {
		members[a] = c
	}
	filter := ix.Filter
	workers := ix.Workers
	timeout := ix.MemberTimeout
	ix.mu.Unlock()
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if timeout <= 0 {
		timeout = DefaultMemberTimeout
	}

	var filterExpr query.Expr
	if filter != "" {
		e, err := query.Parse(filter)
		if err != nil {
			return fmt.Errorf("federation: index %q filter: %w", ix.Name, err)
		}
		filterExpr = e
	}

	// Reconcile the shard set with current membership.
	membersChanged := false
	for a := range ix.shards {
		if _, ok := members[a]; !ok {
			delete(ix.shards, a)
			membersChanged = true
		}
	}
	for a := range members {
		if _, ok := ix.shards[a]; !ok {
			ix.shards[a] = newShard()
		}
	}

	authorities := make([]string, 0, len(members))
	for a := range members {
		authorities = append(authorities, a)
	}
	sort.Strings(authorities)

	// Fan out: each worker owns its member's shard for the duration.
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, a := range authorities {
		wg.Add(1)
		go func(a string, client *vds.Client, sh *shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ix.fetchMember(ctx, a, client, sh, timeout)
		}(a, members[a], ix.shards[a])
	}
	wg.Wait()

	dirty := membersChanged || !ix.built || ix.builtFilter != filter
	if !dirty {
		for _, sh := range ix.shards {
			if sh.gen != sh.builtGen {
				dirty = true
				break
			}
		}
	}

	if !dirty {
		// Nothing changed: keep the shadow, refresh only bookkeeping.
		stale := make(map[string]error)
		for a, sh := range ix.shards {
			if err := sh.staleErr(); err != nil {
				stale[a] = err
			}
		}
		snap := ix.snapshotShards(authorities)
		ix.mu.Lock()
		ix.stale = stale
		ix.shardSnap = snap
		ix.crawls++
		ix.mu.Unlock()
		metricCrawls.Inc()
		return nil
	}

	_, rspan := obs.StartSpan(ctx, "federation.rebuild")
	defer rspan.End()
	shadow := catalog.New(nil)
	origin := make(map[string]string)
	stale := make(map[string]error)
	for _, a := range authorities {
		sh := ix.shards[a]
		if sh.fetchErr != nil {
			// Serve the last good shard state (unlike the full crawl,
			// which forgets unreachable members); still flag the member.
			stale[a] = sh.fetchErr
		}
		if sh.gen == 0 {
			continue // never fetched successfully
		}
		admitted, err := sh.admittedExport(filterExpr, filter)
		if err != nil {
			stale[a] = err
			memberError.Inc()
			sh.builtGen = sh.gen
			continue
		}
		metricAdmitted.Add(uint64(len(admitted.Datasets)))
		if skipped := shadow.ImportTolerant(admitted); skipped > 0 {
			sh.overlapErr = fmt.Errorf("federation: %d objects of %s overlapped existing index entries", skipped, a)
			if stale[a] == nil {
				stale[a] = sh.overlapErr
			}
		} else {
			sh.overlapErr = nil
		}
		for _, ds := range admitted.Datasets {
			key := "dataset/" + ds.Name
			if _, taken := origin[key]; !taken {
				origin[key] = a
			}
		}
		for _, tr := range admitted.Transformations {
			key := "transformation/" + tr.Ref()
			if _, taken := origin[key]; !taken {
				origin[key] = a
			}
		}
		for _, dv := range admitted.Derivations {
			key := "derivation/" + dv.ID
			if _, taken := origin[key]; !taken {
				origin[key] = a
			}
		}
		sh.builtGen = sh.gen
	}
	ix.built = true
	ix.builtFilter = filter
	rspan.SetAttr("datasets", strconv.Itoa(shadow.Stats().Datasets))

	snap := ix.snapshotShards(authorities)
	ix.mu.Lock()
	ix.shadow = shadow
	ix.origin = origin
	ix.stale = stale
	ix.shardSnap = snap
	ix.crawls++
	ix.mu.Unlock()
	metricCrawls.Inc()
	return nil
}

// fetchMember pulls one member's changes into its shard. The fetch span
// wraps the whole round-trip, so its context reaches the member as the
// traceparent header on the /v1/export/since request — the remote
// server's spans parent to this one.
func (ix *Index) fetchMember(ctx context.Context, authority string, client *vds.Client, sh *shard, timeout time.Duration) {
	metricInflight.Inc()
	defer metricInflight.Dec()
	defer metricMemberSeconds.ObserveSince(time.Now())
	ctx, span := obs.StartSpan(ctx, "federation.fetch")
	span.SetAttr("member", authority)
	defer span.End()
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	d, n, err := client.ExportSince(ctx, sh.seq, sh.instance)
	metricBytes.Add(uint64(n))
	if err != nil {
		sh.fetchErr = err
		span.SetError(err)
		memberError.Inc()
		deltaError.Inc()
		return
	}
	sh.fetchErr = nil
	memberOK.Inc()
	switch {
	case d.Full:
		span.SetAttr("delta", "full")
		deltaFull.Inc()
	case d.Empty():
		span.SetAttr("delta", "unchanged")
		deltaUnchanged.Inc()
	default:
		span.SetAttr("delta", "incremental")
		deltaIncremental.Inc()
	}
	if d.Full || !d.Empty() {
		_, aspan := obs.StartSpan(ctx, "federation.apply")
		aspan.SetAttr("member", authority)
		sh.apply(d)
		aspan.End()
	}
	sh.instance, sh.seq = d.Instance, d.Seq
}

// ShardState is one member's sync cursor as of the last delta crawl:
// where the shard stands against the member's journal and whether its
// content has been merged into the served shadow.
type ShardState struct {
	Authority string `json:"authority"`
	Instance  uint64 `json:"instance"`
	Seq       uint64 `json:"seq"`
	Gen       uint64 `json:"gen"`
	BuiltGen  uint64 `json:"built_gen"`
	Error     string `json:"error,omitempty"`
}

// snapshotShards captures the per-member cursors; the caller holds
// crawlMu (shard owner) but NOT ix.mu.
func (ix *Index) snapshotShards(authorities []string) []ShardState {
	out := make([]ShardState, 0, len(authorities))
	for _, a := range authorities {
		sh, ok := ix.shards[a]
		if !ok {
			continue
		}
		st := ShardState{Authority: a, Instance: sh.instance, Seq: sh.seq,
			Gen: sh.gen, BuiltGen: sh.builtGen}
		if err := sh.staleErr(); err != nil {
			st.Error = err.Error()
		}
		out = append(out, st)
	}
	return out
}

// ShardStates reports the last delta crawl's per-member sync cursors.
// It reads a published snapshot, so it never blocks on (or races with)
// a crawl in flight; before the first delta crawl it returns nil.
func (ix *Index) ShardStates() []ShardState {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]ShardState, len(ix.shardSnap))
	copy(out, ix.shardSnap)
	return out
}
