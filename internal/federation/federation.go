// Package federation integrates virtual data catalog information from
// multiple services, as sketched in Figures 3 and 4 of the paper:
// federated indexes that answer discovery queries over many catalogs
// without touching each one per query, and distributed lineage that
// stitches provenance chains spanning personal, group and
// collaboration catalogs linked by vdp:// references.
package federation

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/obs"
	"chimera/internal/query"

	"chimera/internal/vds"
)

// Federation metrics: crawl activity and admission outcomes.
var (
	metricCrawls = obs.Default.Counter("vdc_federation_crawls_total",
		"Completed crawl passes across all indexes.")
	metricCrawlSeconds = obs.Default.Histogram("vdc_federation_crawl_seconds",
		"Wall-clock latency of one full crawl pass.", nil)
	metricMembers = obs.Default.CounterVec("vdc_federation_member_crawls_total",
		"Per-member crawl outcomes.", "outcome")
	memberOK       = metricMembers.With("ok")
	memberError    = metricMembers.With("error")
	metricAdmitted = obs.Default.Counter("vdc_federation_admitted_datasets_total",
		"Datasets admitted into federated indexes across crawls.")
	metricMemberSeconds = obs.Default.Histogram("vdc_federation_member_crawl_seconds",
		"Wall-clock latency of one member's delta fetch.", nil)
	metricDeltas = obs.Default.CounterVec("vdc_federation_member_deltas_total",
		"Delta-crawl responses by kind; unchanged/(full+delta+unchanged) is the hit ratio.", "kind")
	deltaFull        = metricDeltas.With("full")
	deltaIncremental = metricDeltas.With("delta")
	deltaUnchanged   = metricDeltas.With("unchanged")
	deltaError       = metricDeltas.With("error")
	metricBytes      = obs.Default.Counter("vdc_federation_bytes_total",
		"Encoded bytes transferred from members during delta crawls.")
	metricInflight = obs.Default.Gauge("vdc_federation_inflight_crawls",
		"Member fetches currently in flight across all indexes.")
	metricAdmitCache = obs.Default.CounterVec("vdc_federation_admit_cache_total",
		"Memoized admission-filter lookups during shadow rebuilds; hit means the shard reused its cached post-filter export.", "outcome")
	admitHit  = metricAdmitCache.With("hit")
	admitMiss = metricAdmitCache.With("miss")
)

// Delta-crawl tuning defaults.
const (
	// DefaultWorkers bounds concurrent member fetches per crawl pass.
	DefaultWorkers = 8
	// DefaultMemberTimeout bounds one member's fetch; a hung member
	// costs its shard one timeout, not the whole pass.
	DefaultMemberTimeout = 15 * time.Second
)

// Entry is one indexed object with its home authority.
type Entry struct {
	// Kind is "dataset", "transformation" or "derivation".
	Kind string
	// Name is the object's name in its home catalog.
	Name string
	// Authority operates the home catalog.
	Authority string
	// Ref is the vdp:// reference for retrieval.
	Ref string
}

// Index is a federated index over member catalogs. Each Crawl pulls
// member exports into a shadow catalog, against which discovery queries
// run locally; results carry home-authority attribution. Indexes are
// differentiated by scope and by an optional admission filter (e.g. an
// "official collaboration index" admitting only approved entries).
type Index struct {
	// Name labels the index (e.g. "collaboration-wide").
	Name string
	// Scope is free-form ("personal", "group", "collaboration").
	Scope string
	// Filter, when non-empty, admits only datasets matching this
	// discovery query (evaluated on the member's exported state).
	Filter string

	// Workers bounds concurrent member fetches in the delta crawl
	// (default DefaultWorkers).
	Workers int
	// MemberTimeout bounds one member's fetch in the delta crawl
	// (default DefaultMemberTimeout).
	MemberTimeout time.Duration
	// FullCrawl forces the sequential full-export crawl: every pass
	// re-fetches and re-imports every member. Kept as the oracle the
	// incremental path is checked against; also the fallback if a
	// member's delta protocol misbehaves.
	FullCrawl bool

	mu      sync.RWMutex
	members map[string]*vds.Client
	shadow  *catalog.Catalog
	origin  map[string]string // kind/name -> authority
	crawls  int
	stale   map[string]error // per-member last crawl error

	// Delta-crawl state, owned by crawlMu: per-member shards and the
	// conditions under which the current shadow was built.
	crawlMu     sync.Mutex
	shards      map[string]*shard
	built       bool
	builtFilter string

	// shardSnap is the last crawl's per-member cursor snapshot, published
	// under ix.mu so ShardStates never has to wait on a crawl in flight.
	shardSnap []ShardState
}

// NewIndex returns an empty index.
func NewIndex(name, scope string) *Index {
	return &Index{
		Name: name, Scope: scope,
		members: make(map[string]*vds.Client),
		shadow:  catalog.New(nil),
		origin:  make(map[string]string),
		stale:   make(map[string]error),
		shards:  make(map[string]*shard),
	}
}

// AddMember registers a member catalog under its authority name.
func (ix *Index) AddMember(authority string, client *vds.Client) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.members[authority] = client
}

// RemoveMember drops a member; its entries disappear at the next crawl.
func (ix *Index) RemoveMember(authority string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	delete(ix.members, authority)
}

// Members lists member authorities, sorted.
func (ix *Index) Members() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.members))
	for a := range ix.members {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Crawls reports how many crawl passes have completed.
func (ix *Index) Crawls() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.crawls
}

// MemberError returns the error from the last crawl of a member, nil if
// it succeeded.
func (ix *Index) MemberError(authority string) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.stale[authority]
}

// Crawl refreshes the index from current member state. The default
// path is incremental and parallel: members are fetched concurrently
// by a bounded worker pool, each shipping only the changes since its
// shard's last sequence; the shadow is rebuilt only when some shard
// changed. A member that errors is recorded in MemberError — its shard
// keeps serving the last good state — so one dead catalog does not
// take the federation down. Set FullCrawl for the sequential
// full-export pass (which instead drops unreachable members).
// Crawl passes on one index are serialized.
func (ix *Index) Crawl() error {
	return ix.CrawlContext(context.Background())
}

// CrawlContext is Crawl under a caller context. When the context
// carries a tracer, the pass records one causally-connected trace:
// a crawl root span, one fetch span per member (whose span context
// travels to the member as a traceparent header, parenting the remote
// server's spans), and apply/rebuild spans for the local merge work.
func (ix *Index) CrawlContext(ctx context.Context) (err error) {
	defer metricCrawlSeconds.ObserveSince(time.Now())
	ctx, span := obs.StartSpan(ctx, "federation.crawl")
	span.SetAttr("index", ix.Name)
	defer func() {
		span.SetError(err)
		span.End()
	}()
	ix.crawlMu.Lock()
	defer ix.crawlMu.Unlock()
	if ix.FullCrawl {
		return ix.crawlFull(ctx)
	}
	return ix.crawlDelta(ctx)
}

// crawlFull rebuilds the index from full member exports, sequentially.
func (ix *Index) crawlFull(ctx context.Context) error {
	ix.mu.Lock()
	members := make(map[string]*vds.Client, len(ix.members))
	for a, c := range ix.members {
		members[a] = c
	}
	filter := ix.Filter
	ix.mu.Unlock()

	shadow := catalog.New(nil)
	origin := make(map[string]string)
	stale := make(map[string]error)

	// Parse the admission filter once per pass instead of once per
	// member; each admit() then runs the planned query directly.
	var filterExpr query.Expr
	if filter != "" {
		e, err := query.Parse(filter)
		if err != nil {
			return fmt.Errorf("federation: index %q filter: %w", ix.Name, err)
		}
		filterExpr = e
	}

	authorities := make([]string, 0, len(members))
	for a := range members {
		authorities = append(authorities, a)
	}
	sort.Strings(authorities)

	for _, a := range authorities {
		fctx, fspan := obs.StartSpan(ctx, "federation.fetch")
		fspan.SetAttr("member", a)
		exp, err := members[a].ExportCtx(fctx)
		fspan.SetError(err)
		fspan.End()
		if err != nil {
			stale[a] = err
			memberError.Inc()
			continue
		}
		admitted, err := admit(exp, filterExpr)
		if err != nil {
			stale[a] = err
			memberError.Inc()
			continue
		}
		memberOK.Inc()
		metricAdmitted.Add(uint64(len(admitted.Datasets)))
		// Overlapping definitions across members (e.g. one catalog
		// re-exporting a transformation it imported from another) skip
		// only the overlapping objects, keeping first-crawled copies.
		if skipped := shadow.ImportTolerant(admitted); skipped > 0 {
			stale[a] = fmt.Errorf("federation: %d objects of %s overlapped existing index entries", skipped, a)
		}
		for _, ds := range admitted.Datasets {
			key := "dataset/" + ds.Name
			if _, taken := origin[key]; !taken {
				origin[key] = a
			}
		}
		for _, tr := range admitted.Transformations {
			key := "transformation/" + tr.Ref()
			if _, taken := origin[key]; !taken {
				origin[key] = a
			}
		}
		for _, dv := range admitted.Derivations {
			key := "derivation/" + dv.ID
			if _, taken := origin[key]; !taken {
				origin[key] = a
			}
		}
	}

	// The full pass bypasses the shards, so the next delta pass must
	// not trust its skip-rebuild bookkeeping.
	ix.built = false

	ix.mu.Lock()
	ix.shadow = shadow
	ix.origin = origin
	ix.stale = stale
	ix.crawls++
	ix.mu.Unlock()
	metricCrawls.Inc()
	return nil
}

// admit filters an export down to the entries the index accepts.
func admit(exp catalog.Export, filter query.Expr) (catalog.Export, error) {
	if filter == nil {
		return exp, nil
	}
	// Evaluate the filter on a temporary catalog of the member state.
	tmp := catalog.New(nil)
	if err := tmp.Import(exp); err != nil {
		return catalog.Export{}, err
	}
	res, err := query.Run(tmp, query.KDataset, filter)
	if err != nil {
		return catalog.Export{}, err
	}
	keep := make(map[string]bool, len(res.Datasets))
	for _, ds := range res.Datasets {
		keep[ds.Name] = true
	}
	out := exp
	out.Datasets = nil
	for _, ds := range exp.Datasets {
		if keep[ds.Name] {
			out.Datasets = append(out.Datasets, ds)
		}
	}
	// Keep only derivations whose outputs are all admitted, so the
	// filtered view stays provenance-consistent.
	tmp2 := catalog.New(nil)
	for _, tr := range exp.Transformations {
		if err := tmp2.AddTransformation(tr); err != nil {
			return catalog.Export{}, err
		}
	}
	out.Derivations = nil
	for _, dv := range exp.Derivations {
		tr, err := tmp2.Transformation(dv.TR)
		if err != nil {
			continue
		}
		ok := true
		for _, o := range dv.Outputs(tr) {
			if !keep[o] {
				ok = false
				break
			}
		}
		if ok {
			out.Derivations = append(out.Derivations, dv)
		}
	}
	out.Replicas = nil
	for _, r := range exp.Replicas {
		if keep[r.Dataset] {
			out.Replicas = append(out.Replicas, r)
		}
	}
	out.Invocations = nil
	admittedDVs := make(map[string]bool, len(out.Derivations))
	for _, dv := range out.Derivations {
		admittedDVs[dv.ID] = true
	}
	for _, iv := range exp.Invocations {
		if admittedDVs[iv.Derivation] {
			out.Invocations = append(out.Invocations, iv)
		}
	}
	return out, nil
}

// SearchDatasets runs a discovery query against the index and returns
// attributed entries.
func (ix *Index) SearchDatasets(q string) ([]Entry, error) {
	ix.mu.RLock()
	shadow := ix.shadow
	ix.mu.RUnlock()
	res, err := query.Search(shadow, query.KDataset, q)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(res.Datasets))
	for _, ds := range res.Datasets {
		out = append(out, ix.entryFor("dataset", ds.Name))
	}
	return out, nil
}

// SearchTransformations runs a discovery query for transformations.
func (ix *Index) SearchTransformations(q string) ([]Entry, error) {
	ix.mu.RLock()
	shadow := ix.shadow
	ix.mu.RUnlock()
	res, err := query.Search(shadow, query.KTransformation, q)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(res.Transformations))
	for _, tr := range res.Transformations {
		out = append(out, ix.entryFor("transformation", tr.Ref()))
	}
	return out, nil
}

// Lookup finds the home of a specific object.
func (ix *Index) Lookup(kind, name string) (Entry, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	a, ok := ix.origin[kind+"/"+name]
	if !ok {
		return Entry{}, false
	}
	return Entry{Kind: kind, Name: name, Authority: a,
		Ref: vds.Name{Authority: a, Object: name}.String()}, true
}

// Types exposes the shadow registry for type-aware queries.
func (ix *Index) Types() *dtype.Registry { return ix.shadow.Types() }

// Stats reports the size of the indexed view.
func (ix *Index) Stats() catalog.Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.shadow.Stats()
}

func (ix *Index) entryFor(kind, name string) Entry {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	a := ix.origin[kind+"/"+name]
	e := Entry{Kind: kind, Name: name, Authority: a}
	if a != "" {
		e.Ref = vds.Name{Authority: a, Object: name}.String()
	}
	return e
}
