package federation

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/schema"
	"chimera/internal/vds"
)

// snapshot captures the externally observable crawl result.
type snapshot struct {
	export string
	origin map[string]string
	stale  map[string]string
}

func snap(t *testing.T, ix *Index) snapshot {
	t.Helper()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	data, err := schema.CanonicalBytes(ix.shadow.Export())
	if err != nil {
		t.Fatal(err)
	}
	s := snapshot{export: string(data), origin: make(map[string]string), stale: make(map[string]string)}
	for k, v := range ix.origin {
		s.origin[k] = v
	}
	for k, v := range ix.stale {
		s.stale[k] = v.Error()
	}
	return s
}

func compareSnapshots(t *testing.T, round int, delta, oracle snapshot) {
	t.Helper()
	if delta.export != oracle.export {
		t.Fatalf("round %d: shadow diverged\ndelta:  %.2000s\noracle: %.2000s", round, delta.export, oracle.export)
	}
	if !reflect.DeepEqual(delta.origin, oracle.origin) {
		t.Fatalf("round %d: origin diverged\ndelta:  %v\noracle: %v", round, delta.origin, oracle.origin)
	}
	if !reflect.DeepEqual(delta.stale, oracle.stale) {
		t.Fatalf("round %d: stale diverged\ndelta:  %v\noracle: %v", round, delta.stale, oracle.stale)
	}
}

// mutator applies random mutation histories to a member catalog.
type mutator struct {
	rng      *rand.Rand
	cat      *catalog.Catalog
	prefix   string
	datasets []string
	replicas []string
	trs      int
}

func (m *mutator) step(t *testing.T) {
	t.Helper()
	switch m.rng.Intn(6) {
	case 0: // new dataset
		name := fmt.Sprintf("%s-ds%d", m.prefix, len(m.datasets))
		if err := m.cat.AddDataset(schema.Dataset{Name: name,
			Attrs: schema.Attributes{"quality": []string{"approved", "draft"}[m.rng.Intn(2)]}}); err != nil {
			t.Fatal(err)
		}
		m.datasets = append(m.datasets, name)
	case 1: // epoch bump on an existing dataset
		if len(m.datasets) == 0 {
			return
		}
		if _, err := m.cat.BumpEpoch(m.datasets[m.rng.Intn(len(m.datasets))], false); err != nil {
			t.Fatal(err)
		}
	case 2: // transformation + derivation chain
		tr := fmt.Sprintf("%s-tr%d", m.prefix, m.trs)
		m.trs++
		if err := m.cat.AddTransformation(twoArg(tr)); err != nil {
			t.Fatal(err)
		}
		out := fmt.Sprintf("%s-out%d", m.prefix, m.trs)
		if _, err := m.cat.AddDerivation(chainDV(tr, "input-"+m.prefix, out)); err != nil {
			t.Fatal(err)
		}
	case 3: // new replica
		if len(m.datasets) == 0 {
			return
		}
		id := fmt.Sprintf("%s-r%d", m.prefix, len(m.replicas))
		ds := m.datasets[m.rng.Intn(len(m.datasets))]
		if err := m.cat.AddReplica(schema.Replica{ID: id, Dataset: ds, Site: m.prefix, PFN: "gsiftp://" + id}); err != nil {
			t.Fatal(err)
		}
		m.replicas = append(m.replicas, id)
	case 4: // drop a replica
		if len(m.replicas) == 0 {
			return
		}
		i := m.rng.Intn(len(m.replicas))
		_ = m.cat.RemoveReplica(m.replicas[i])
		m.replicas = append(m.replicas[:i], m.replicas[i+1:]...)
	case 5: // update attributes (upsert path)
		if len(m.datasets) == 0 {
			return
		}
		ds, err := m.cat.Dataset(m.datasets[m.rng.Intn(len(m.datasets))])
		if err != nil {
			t.Fatal(err)
		}
		ds.Attrs = schema.Attributes{"quality": "approved", "rev": fmt.Sprint(m.rng.Intn(100))}
		if err := m.cat.UpdateDataset(ds); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeltaCrawlEquivalence drives the incremental parallel crawl and
// the sequential full-export oracle over identical randomized mutation
// histories and requires bit-identical shadow state, origins and stale
// maps after every round — including journal-window overflow, which
// forces the delta path through its full-export fallback.
func TestDeltaCrawlEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		filter string
		seed   int64
	}{
		{"unfiltered", "", 1},
		{"unfiltered-alt-seed", "", 7},
		{"filtered", `attr.quality = approved`, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			const nMembers = 4
			muts := make([]*mutator, nMembers)
			delta := NewIndex("delta", "test")
			oracle := NewIndex("oracle", "test")
			oracle.FullCrawl = true
			delta.Filter, oracle.Filter = tc.filter, tc.filter
			for i := 0; i < nMembers; i++ {
				name := fmt.Sprintf("m%d", i)
				cat, client, _ := site(t, name)
				muts[i] = &mutator{rng: rng, cat: cat, prefix: name}
				delta.AddMember(name, client)
				oracle.AddMember(name, client)
			}
			// A tight journal on one member forces overflow -> full
			// fallback whenever it takes a big batch between crawls.
			muts[0].cat.SetJournalWindow(4)

			for round := 0; round < 12; round++ {
				steps := rng.Intn(10) // sometimes 0: the unchanged fast path
				for s := 0; s < steps; s++ {
					muts[rng.Intn(nMembers)].step(t)
				}
				if err := delta.Crawl(); err != nil {
					t.Fatal(err)
				}
				if err := oracle.Crawl(); err != nil {
					t.Fatal(err)
				}
				compareSnapshots(t, round, snap(t, delta), snap(t, oracle))
			}
		})
	}
}

// TestDeltaCrawlUnchangedSkipsRebuild checks the fast path: when no
// member changed, the pass keeps the existing shadow untouched (pointer
// identity: zero re-import) while still counting as a crawl.
func TestDeltaCrawlUnchangedSkipsRebuild(t *testing.T) {
	cat, client, _ := site(t, "g")
	if err := cat.AddDataset(schema.Dataset{Name: "d"}); err != nil {
		t.Fatal(err)
	}
	ix := NewIndex("x", "group")
	ix.AddMember("g", client)
	if err := ix.Crawl(); err != nil {
		t.Fatal(err)
	}
	before := func() *catalog.Catalog { ix.mu.RLock(); defer ix.mu.RUnlock(); return ix.shadow }()
	if err := ix.Crawl(); err != nil {
		t.Fatal(err)
	}
	after := func() *catalog.Catalog { ix.mu.RLock(); defer ix.mu.RUnlock(); return ix.shadow }()
	if before != after {
		t.Error("unchanged pass rebuilt the shadow")
	}
	if ix.Crawls() != 2 {
		t.Errorf("crawls: %d", ix.Crawls())
	}
	if _, ok := ix.Lookup("dataset", "d"); !ok {
		t.Error("lookup broken after unchanged pass")
	}
	// A mutation makes the next pass rebuild again.
	if err := cat.AddDataset(schema.Dataset{Name: "d2"}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Crawl(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup("dataset", "d2"); !ok {
		t.Error("recrawl missed new data")
	}
}

// delayedSite serves a catalog with an injected per-request delay.
func delayedSite(t *testing.T, name string, delay time.Duration) (*catalog.Catalog, *vds.Client) {
	t.Helper()
	cat := catalog.New(nil)
	srv := vds.NewServer(name, cat)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	return cat, vds.NewClient(hs.URL)
}

// TestCrawlHangingMember: a member that never answers burns its own
// timeout, not the whole pass — live members still get indexed.
func TestCrawlHangingMember(t *testing.T) {
	catA, clientA, _ := site(t, "alive")
	if err := catA.AddDataset(schema.Dataset{Name: "d"}); err != nil {
		t.Fatal(err)
	}
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hang until the client gives up
	}))
	t.Cleanup(hung.Close)

	ix := NewIndex("x", "group")
	ix.MemberTimeout = 100 * time.Millisecond
	ix.AddMember("alive", clientA)
	ix.AddMember("hung", vds.NewClient(hung.URL))

	start := time.Now()
	if err := ix.Crawl(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("hanging member stalled the pass: %v", elapsed)
	}
	if _, ok := ix.Lookup("dataset", "d"); !ok {
		t.Error("live member not indexed")
	}
	if ix.MemberError("hung") == nil {
		t.Error("hung member error not recorded")
	}
}

// TestCrawlSlowMemberWallClock: with parallel fan-out, pass latency
// tracks the slowest member, not the sum over members.
func TestCrawlSlowMemberWallClock(t *testing.T) {
	const slow = 250 * time.Millisecond
	ix := NewIndex("x", "group")
	for i := 0; i < 4; i++ {
		d := slow
		cat, client := delayedSite(t, fmt.Sprintf("m%d", i), d)
		if err := cat.AddDataset(schema.Dataset{Name: fmt.Sprintf("d%d", i)}); err != nil {
			t.Fatal(err)
		}
		ix.AddMember(fmt.Sprintf("m%d", i), client)
	}
	start := time.Now()
	if err := ix.Crawl(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if sequential := 4 * slow; elapsed >= sequential-slow/2 {
		t.Errorf("pass took %v; parallel fan-out should track the slowest member (%v), not the sum (%v)",
			elapsed, slow, sequential)
	}
	for i := 0; i < 4; i++ {
		if _, ok := ix.Lookup("dataset", fmt.Sprintf("d%d", i)); !ok {
			t.Errorf("member m%d not indexed", i)
		}
	}
}

// TestCrawlStorm is the -race smoke: concurrent crawls and searches
// against members that mutate underneath them.
func TestCrawlStorm(t *testing.T) {
	const nMembers = 3
	ix := NewIndex("storm", "group")
	cats := make([]*catalog.Catalog, nMembers)
	for i := 0; i < nMembers; i++ {
		name := fmt.Sprintf("m%d", i)
		cat, client, _ := site(t, name)
		cats[i] = cat
		if err := cat.AddDataset(schema.Dataset{Name: name + "-seed"}); err != nil {
			t.Fatal(err)
		}
		ix.AddMember(name, client)
	}

	stop := make(chan struct{})
	var writers, crawlers sync.WaitGroup
	// Writers: keep the member catalogs moving until told to stop.
	// Paced so they contend with the crawlers without starving them.
	for i := 0; i < nMembers; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for n := 0; n < 2000; n++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = cats[i].AddDataset(schema.Dataset{Name: fmt.Sprintf("m%d-ds%d", i, n)})
				if n%50 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(i)
	}
	// Crawlers and readers.
	for g := 0; g < 4; g++ {
		crawlers.Add(1)
		go func() {
			defer crawlers.Done()
			for n := 0; n < 10; n++ {
				if err := ix.Crawl(); err != nil {
					t.Error(err)
					return
				}
				if _, err := ix.SearchDatasets(`name ~ "*-seed"`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	crawlers.Wait()
	close(stop)
	writers.Wait()

	// The index must still answer consistently after the storm.
	if err := ix.Crawl(); err != nil {
		t.Fatal(err)
	}
	if res, err := ix.SearchDatasets(`name ~ "*-seed"`); err != nil || len(res) != nMembers {
		t.Fatalf("post-storm search: %d results, err %v", len(res), err)
	}
}

// siteSharded is site() with an 8-shard member catalog: the member's
// journal is per-shard and its exports are scatter-gather merges.
func siteSharded(t *testing.T, name string) (*catalog.Catalog, *vds.Client) {
	t.Helper()
	cat := catalog.NewSharded(nil, 8)
	hs := httptest.NewServer(vds.NewServer(name, cat))
	t.Cleanup(hs.Close)
	return cat, vds.NewClient(hs.URL)
}

// TestDeltaCrawlShardedMembersMixedOverflow drives a 16-member
// federation where every member catalog is sharded, concurrent writers
// mutate the members during the burst, and half the members run a tiny
// journal window. After a big burst those members' per-shard journals
// have trimmed past the crawler's cursor — their next delta degrades to
// a full-export fallback — while the quiet members still serve true
// deltas. The merged incremental crawl must match the FullCrawl oracle
// exactly in either regime.
func TestDeltaCrawlShardedMembersMixedOverflow(t *testing.T) {
	const nMembers = 16
	delta := NewIndex("delta", "test")
	oracle := NewIndex("oracle", "test")
	oracle.FullCrawl = true
	cats := make([]*catalog.Catalog, nMembers)
	for i := 0; i < nMembers; i++ {
		name := fmt.Sprintf("m%d", i)
		cat, client := siteSharded(t, name)
		cats[i] = cat
		if i%2 == 0 {
			// Overflow candidates: any burst larger than ~2x4 entries on
			// one shard trims past a crawler that last saw the pre-burst
			// sequence.
			cat.SetJournalWindow(4)
		}
		delta.AddMember(name, client)
		oracle.AddMember(name, client)
	}

	for round := 0; round < 4; round++ {
		// Concurrent burst: even members take a multi-writer storm (big
		// enough to overflow their tiny windows), odd members take one
		// small touch (well inside their default window).
		var wg sync.WaitGroup
		for i := 0; i < nMembers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if i%2 == 0 {
					var ww sync.WaitGroup
					for w := 0; w < 4; w++ {
						ww.Add(1)
						go func(w int) {
							defer ww.Done()
							for n := 0; n < 25; n++ {
								_ = cats[i].AddDataset(schema.Dataset{
									Name: fmt.Sprintf("m%d-w%d-r%d-ds%d", i, w, round, n)})
							}
						}(w)
					}
					ww.Wait()
				} else {
					_ = cats[i].AddDataset(schema.Dataset{
						Name: fmt.Sprintf("m%d-r%d-only", i, round)})
				}
			}(i)
		}
		wg.Wait()

		if round > 0 {
			// The crawler holds a pre-burst cursor for every member.
			// Verify the regimes actually diverge before crawling: every
			// overflowed member must answer that cursor with a full
			// export, every quiet member with a true delta.
			fulls, deltas := 0, 0
			for _, st := range delta.ShardStates() {
				var i int
				fmt.Sscanf(st.Authority, "m%d", &i)
				d := cats[i].ChangesSince(st.Seq, st.Instance)
				if d.Full {
					fulls++
				} else if !d.Empty() {
					deltas++
				}
			}
			if fulls < nMembers/2 || deltas < nMembers/2 {
				t.Fatalf("round %d: want mixed regimes, got %d full / %d delta", round, fulls, deltas)
			}
		}

		if err := delta.Crawl(); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Crawl(); err != nil {
			t.Fatal(err)
		}
		compareSnapshots(t, round, snap(t, delta), snap(t, oracle))
	}
}
