package federation

import (
	"fmt"

	"chimera/internal/catalog"
	"chimera/internal/vds"
)

// Distributed lineage stitches provenance chains that hyperlink across
// catalogs (Figure 3): a personal catalog's derivation may consume a
// dataset named "vdp://group.example/official-skim", whose own lineage
// lives in the group catalog, which in turn may reference the
// collaboration catalog.

// DistStep is one lineage step attributed to its home catalog.
type DistStep struct {
	// Authority is the catalog that recorded the step.
	Authority string
	// Step is the derivation-level lineage entry.
	Step catalog.LineageStep
	// Hop is the number of catalog boundaries crossed to reach it.
	Hop int
}

// DistLineage is a cross-catalog audit trail.
type DistLineage struct {
	// Dataset is the queried name at the starting authority.
	Dataset string
	// Steps in breadth-first order across catalogs.
	Steps []DistStep
	// PrimarySources are the underived roots, qualified as
	// authority:name.
	PrimarySources []string
	// Unresolved lists vdp references whose authorities could not be
	// reached.
	Unresolved []string
}

// Lineage walks provenance starting from dataset at authority,
// following vdp:// dataset names into their home catalogs, up to
// maxHops catalog boundaries.
func Lineage(reg *vds.Registry, authority, dataset string, maxHops int) (DistLineage, error) {
	out := DistLineage{Dataset: dataset}
	type item struct {
		authority, dataset string
		hop                int
	}
	queue := []item{{authority, dataset, 0}}
	seen := map[string]bool{authority + "/" + dataset: true}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		client, err := reg.ClientFor(cur.authority)
		if err != nil {
			out.Unresolved = append(out.Unresolved, cur.authority+"/"+cur.dataset)
			continue
		}
		rep, err := client.Lineage(cur.dataset)
		if err != nil {
			if vds.NotFound(err) {
				out.Unresolved = append(out.Unresolved, cur.authority+"/"+cur.dataset)
				continue
			}
			return DistLineage{}, fmt.Errorf("federation: lineage at %s: %w", cur.authority, err)
		}
		for _, step := range rep.Steps {
			out.Steps = append(out.Steps, DistStep{Authority: cur.authority, Step: step, Hop: cur.hop})
		}
		for _, primary := range rep.PrimarySources {
			if vds.IsVDP(primary) && cur.hop < maxHops {
				name, err := vds.ParseName(primary)
				if err == nil {
					key := name.Authority + "/" + name.Object
					if !seen[key] {
						seen[key] = true
						queue = append(queue, item{name.Authority, name.Object, cur.hop + 1})
					}
					continue
				}
			}
			out.PrimarySources = append(out.PrimarySources, cur.authority+":"+primary)
		}
	}
	return out, nil
}
