package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// captureLogs redirects the global sink to a buffer for one test and
// restores defaults afterwards.
func captureLogs(t *testing.T, jsonFormat bool) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	SetLogOutput(&buf, jsonFormat)
	t.Cleanup(func() {
		SetLogOutput(os.Stderr, false)
		ResetLogLevels()
	})
	return &buf
}

func TestLoggerSubsystemLevels(t *testing.T) {
	buf := captureLogs(t, false)

	wal := Logger("wal")
	httpL := Logger("http")

	wal.Debug("below default") // default info: filtered
	if buf.Len() != 0 {
		t.Fatalf("debug leaked at default level: %s", buf.String())
	}

	SetLogLevel("wal", slog.LevelDebug)
	SetLogLevel("http", slog.LevelWarn)
	wal.Debug("wal debug on")
	httpL.Info("http info off")
	httpL.Warn("http warn on")

	out := buf.String()
	if !strings.Contains(out, "wal debug on") {
		t.Error("per-subsystem debug override not applied")
	}
	if strings.Contains(out, "http info off") {
		t.Error("http info leaked past its warn override")
	}
	if !strings.Contains(out, "http warn on") {
		t.Error("http warn filtered despite override")
	}
	if !strings.Contains(out, "subsys=wal") {
		t.Errorf("records missing subsys attribute:\n%s", out)
	}
}

func TestParseLevelSpec(t *testing.T) {
	t.Cleanup(ResetLogLevels)
	if err := ParseLevelSpec("warn, wal=debug ,http=error"); err != nil {
		t.Fatal(err)
	}
	levels := LogLevels()
	if levels[""] != "WARN" || levels["wal"] != "DEBUG" || levels["http"] != "ERROR" {
		t.Errorf("levels = %v", levels)
	}
	for _, bad := range []string{"nope", "wal=loud", "=debug"} {
		if err := ParseLevelSpec(bad); err == nil {
			t.Errorf("ParseLevelSpec(%q) accepted", bad)
		}
	}
}

func TestLoggerStampsTraceIDs(t *testing.T) {
	buf := captureLogs(t, true)

	tr := NewTracer()
	ctx, span := StartSpan(WithTracer(context.Background(), tr), "op")
	Logger("test").InfoContext(ctx, "inside span")
	span.End()
	Logger("test").Info("outside span")

	dec := json.NewDecoder(buf)
	var first, second map[string]any
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&second); err != nil {
		t.Fatal(err)
	}
	if first["trace_id"] != span.Context().Trace {
		t.Errorf("trace_id = %v, want %s", first["trace_id"], span.Context().Trace)
	}
	if first["span_id"] == nil || first["subsys"] != "test" {
		t.Errorf("record missing span_id/subsys: %v", first)
	}
	if _, ok := second["trace_id"]; ok {
		t.Error("span-less record carries a trace_id")
	}
}

func TestLogLevelHandler(t *testing.T) {
	t.Cleanup(ResetLogLevels)
	h := LogLevelHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/loglevel", nil))
	var levels map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &levels); err != nil {
		t.Fatalf("GET body %q: %v", rec.Body.String(), err)
	}
	if levels["default"] != "INFO" {
		t.Errorf("default level = %q", levels["default"])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("PUT", "/debug/loglevel?level=debug,wal=warn", nil))
	if rec.Code != 200 {
		t.Fatalf("PUT: %d %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &levels); err != nil {
		t.Fatal(err)
	}
	if levels["default"] != "DEBUG" || levels["wal"] != "WARN" {
		t.Errorf("after PUT: %v", levels)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("PUT", "/debug/loglevel?level=wal=loud", nil))
	if rec.Code != 400 {
		t.Errorf("bad spec: %d, want 400", rec.Code)
	}

	// Body form, no query parameter.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/loglevel", strings.NewReader("error")))
	if rec.Code != 200 {
		t.Fatalf("POST body spec: %d", rec.Code)
	}
	if got := LogLevels()[""]; got != "ERROR" {
		t.Errorf("default after body spec = %q", got)
	}
}
