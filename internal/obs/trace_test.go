package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"testing"
	"time"
)

// TestSpanNesting exercises StartSpan context propagation: children
// link to parents, attributes stick, and a tracer-less context yields
// safe no-op spans.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "workflow")
	ctx2, child := StartSpan(ctx, "node-a")
	child.SetAttr("site", "anl")
	_, grand := StartSpan(ctx2, "stage-in")
	grand.End()
	child.End()
	_, sib := StartSpan(ctx, "node-b")
	sib.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["workflow"].Parent != 0 {
		t.Errorf("root has parent %d", byName["workflow"].Parent)
	}
	if byName["node-a"].Parent != byName["workflow"].ID {
		t.Errorf("node-a parent = %d, want root %d", byName["node-a"].Parent, byName["workflow"].ID)
	}
	if byName["stage-in"].Parent != byName["node-a"].ID {
		t.Errorf("stage-in parent = %d, want node-a %d", byName["stage-in"].Parent, byName["node-a"].ID)
	}
	if byName["node-b"].Parent != byName["workflow"].ID {
		t.Errorf("node-b parent = %d, want root %d", byName["node-b"].Parent, byName["workflow"].ID)
	}
	if byName["node-a"].Attrs["site"] != "anl" {
		t.Errorf("attr lost: %v", byName["node-a"].Attrs)
	}

	// No tracer: everything is a no-op and must not panic.
	ctx3, none := StartSpan(context.Background(), "nope")
	none.SetAttr("k", "v")
	none.End()
	if TracerFrom(ctx3) != nil {
		t.Error("no-op StartSpan attached a tracer")
	}
	var nilT *Tracer
	nilT.Record(SpanRecord{Name: "x"}) // nil tracer is a valid sink
	if nilT.Spans() != nil {
		t.Error("nil tracer returned spans")
	}
}

// TestChromeTraceRoundTrip exports a DAG-shaped trace (root, two
// overlapping children, one grandchild) and re-parses the JSON,
// checking event fields, parent links, and that each lane is properly
// nested (children share the root's lane only when contained without
// sibling overlap).
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	root := tr.NextID()
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	// Two children overlap in time (parallel branches).
	a, b := tr.NextID(), tr.NextID()
	tr.Record(SpanRecord{ID: a, Parent: root, Name: "gen", Start: ms(0), End: ms(60),
		Attrs: map[string]string{"site": "anl"}})
	tr.Record(SpanRecord{ID: b, Parent: root, Name: "sim", Start: ms(10), End: ms(50)})
	tr.Record(SpanRecord{ID: tr.NextID(), Parent: a, Name: "xfer", Start: ms(5), End: ms(20)})
	tr.Record(SpanRecord{ID: root, Name: "workflow", Start: ms(0), End: ms(100)})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("round-trip unmarshal: %v\n%s", err, buf.String())
	}
	// Span events only; cross-lane parent links add flow events too.
	byName := map[string]int{}
	nspans := 0
	for i, ev := range parsed.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		nspans++
		byName[ev.Name] = i
	}
	if nspans != 4 {
		t.Fatalf("got %d span events, want 4", nspans)
	}
	wf := parsed.TraceEvents[byName["workflow"]]
	if wf.TS != 0 || wf.Dur != 100000 {
		t.Errorf("workflow ts/dur = %v/%v, want 0/100000", wf.TS, wf.Dur)
	}
	gen := parsed.TraceEvents[byName["gen"]]
	if gen.Args["parent"] != strconv.FormatInt(root, 10) {
		t.Errorf("gen parent arg = %q, want %d", gen.Args["parent"], root)
	}
	if gen.Args["site"] != "anl" {
		t.Errorf("gen attrs lost: %v", gen.Args)
	}
	// gen nests in the workflow lane; sim overlaps gen so it must be
	// on a different lane; xfer nests inside gen.
	sim := parsed.TraceEvents[byName["sim"]]
	xfer := parsed.TraceEvents[byName["xfer"]]
	if gen.TID != wf.TID {
		t.Errorf("gen lane %d, want workflow lane %d", gen.TID, wf.TID)
	}
	if sim.TID == gen.TID {
		t.Error("overlapping siblings share a lane")
	}
	if xfer.TID != gen.TID {
		t.Errorf("xfer lane %d, want gen lane %d", xfer.TID, gen.TID)
	}
	// sim landed off its parent's lane, so the causal edge must be
	// rendered as a flow pair (start on the parent lane, finish on
	// sim's lane).
	var flowS, flowF bool
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "s":
			flowS = flowS || ev.TID == wf.TID
		case "f":
			flowF = flowF || ev.TID == sim.TID
		}
	}
	if !flowS || !flowF {
		t.Errorf("missing flow pair for cross-lane span: s=%v f=%v", flowS, flowF)
	}
}
