package obs

import (
	"runtime"
	"time"
)

// Runtime self-telemetry: Go runtime health exported through the
// registry. The gauges are refreshed by a scrape-time collector, so an
// idle process pays nothing between scrapes. EnableRuntimeMetrics is
// idempotent per registry.
func EnableRuntimeMetrics(r *Registry) {
	if !r.runtimeOn.CompareAndSwap(false, true) {
		return
	}
	var (
		goroutines = r.Gauge("vdc_go_goroutines",
			"Goroutines currently live in the process.")
		heapAlloc = r.Gauge("vdc_go_heap_alloc_bytes",
			"Bytes of allocated heap objects.")
		heapObjects = r.Gauge("vdc_go_heap_objects",
			"Allocated heap objects.")
		sysBytes = r.Gauge("vdc_go_sys_bytes",
			"Total bytes obtained from the OS.")
		nextGC = r.Gauge("vdc_go_next_gc_bytes",
			"Heap size target of the next GC cycle.")
		gcRuns = r.Gauge("vdc_go_gc_runs_total",
			"Completed GC cycles since process start.")
		gcPause = r.Gauge("vdc_go_gc_pause_seconds_total",
			"Cumulative GC stop-the-world pause time.")
		gcFraction = r.Gauge("vdc_go_gc_cpu_fraction",
			"Fraction of available CPU consumed by the GC since start.")
		uptime = r.Gauge("vdc_process_uptime_seconds",
			"Seconds since the process enabled runtime metrics.")
	)
	start := time.Now()
	r.RegisterCollector(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		sysBytes.Set(float64(ms.Sys))
		nextGC.Set(float64(ms.NextGC))
		gcRuns.Set(float64(ms.NumGC))
		gcPause.Set(time.Duration(ms.PauseTotalNs).Seconds())
		gcFraction.Set(ms.GCCPUFraction)
		uptime.Set(time.Since(start).Seconds())
	})
}
