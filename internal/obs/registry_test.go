package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRegistryRace hammers one counter family, one gauge and one
// histogram from many goroutines; run under -race this is the
// concurrency-safety test, and the totals check catches lost updates.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("race_ops_total", "ops", "op")
	g := r.Gauge("race_gauge", "g")
	h := r.Histogram("race_seconds", "h", []float64{0.5})

	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ops := []string{"a", "b"}
			for i := 0; i < per; i++ {
				vec.With(ops[(w+i)%2]).Inc()
				g.Add(1)
				h.Observe(float64(i%2) + 0.25) // alternates buckets
			}
		}()
	}
	wg.Wait()

	if got := vec.With("a").Value() + vec.With("b").Value(); got != workers*per {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge lost updates: got %v want %v", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram lost samples: got %d want %d", got, workers*per)
	}
}

// TestHistogramBuckets pins bucket boundary semantics: le is
// inclusive, out-of-range samples land in +Inf, and exposition
// cumulates.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})

	for _, v := range []float64{0.005, 0.01, 0.02, 0.1, 0.5, 1, 2, 100} {
		h.Observe(v)
	}
	// Direct (non-cumulative) bucket counts.
	want := []uint64{2, 2, 2, 2} // (..0.01], (0.01..0.1], (0.1..1], (1..+Inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count: got %d want 8", h.Count())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 4`,
		`lat_seconds_bucket{le="1"} 6`,
		`lat_seconds_bucket{le="+Inf"} 8`,
		`lat_seconds_count 8`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q in:\n%s", line, out)
		}
	}
}

// TestPrometheusExposition is the golden-output test for the text
// format: families sorted by name, series sorted by labels, HELP/TYPE
// headers, label quoting.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("zeta_total", "Last family.", "op")
	c.With("write").Add(3)
	c.With("read").Inc()
	r.Gauge("alpha_inflight", "First family.").Set(2.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_inflight First family.
# TYPE alpha_inflight gauge
alpha_inflight 2.5
# HELP zeta_total Last family.
# TYPE zeta_total counter
zeta_total{op="read"} 1
zeta_total{op="write"} 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestHandler serves the registry over HTTP with the Prometheus
// content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type: %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestGetOrCreate verifies registration is idempotent and kind
// mismatches panic.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "x")
	b := r.Counter("same_total", "x")
	if a != b {
		t.Fatal("re-registration returned a different series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("same_total", "x")
}
