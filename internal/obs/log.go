package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Structured logging. Every subsystem gets its logger from
// Logger("wal"), Logger("federation"), ...; records carry a subsys
// attribute, and — when emitted through the *Context methods with a
// context that carries a span — trace_id/span_id attributes, so a log
// line found by grep links straight to its span in the trace viewer.
//
// Levels are per subsystem and mutable at runtime: SetLogLevel flips
// one subsystem, ParseLevelSpec applies a "-log-level"-style spec
// ("info,wal=debug,http=warn"), and LogLevelHandler exposes both over
// HTTP for a live daemon. The level check is the hot path and costs
// one atomic load (default level) plus one RLock'd map probe only for
// subsystems with an explicit override.

// logSink holds the output handler every subsystem logger writes
// through; swapped atomically by SetLogOutput.
var logSink atomic.Pointer[slog.Handler]

func init() {
	h := slog.Handler(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	logSink.Store(&h)
}

// SetLogOutput redirects all obs loggers to w, as JSON records when
// jsonFormat is set, text otherwise. The handler passes every level
// through: filtering happens in the per-subsystem Enabled check.
func SetLogOutput(w io.Writer, jsonFormat bool) {
	opts := &slog.HandlerOptions{Level: slog.LevelDebug}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	logSink.Store(&h)
}

// levelTable is the mutable per-subsystem level configuration.
type levelTable struct {
	def atomic.Int64 // slog.Level of subsystems without an override

	mu       sync.RWMutex
	override map[string]slog.Level
	hasAny   atomic.Bool // fast path: no overrides at all
}

var logLevels = newLevelTable()

func newLevelTable() *levelTable {
	t := &levelTable{override: make(map[string]slog.Level)}
	t.def.Store(int64(slog.LevelInfo))
	return t
}

func (t *levelTable) level(subsys string) slog.Level {
	if t.hasAny.Load() {
		t.mu.RLock()
		l, ok := t.override[subsys]
		t.mu.RUnlock()
		if ok {
			return l
		}
	}
	return slog.Level(t.def.Load())
}

// SetLogLevel sets the minimum level for one subsystem; the empty
// subsystem name sets the default applied to all others.
func SetLogLevel(subsys string, l slog.Level) {
	if subsys == "" {
		logLevels.def.Store(int64(l))
		return
	}
	logLevels.mu.Lock()
	logLevels.override[subsys] = l
	logLevels.hasAny.Store(true)
	logLevels.mu.Unlock()
}

// ResetLogLevels clears every per-subsystem override and restores the
// default level to info.
func ResetLogLevels() {
	logLevels.mu.Lock()
	logLevels.override = make(map[string]slog.Level)
	logLevels.hasAny.Store(false)
	logLevels.mu.Unlock()
	logLevels.def.Store(int64(slog.LevelInfo))
}

// ParseLevelSpec applies a level spec of comma-separated entries, each
// either a bare level (the default) or subsys=level:
//
//	info,wal=debug,http=warn
//
// Levels are debug, info, warn, error (case-insensitive).
func ParseLevelSpec(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		subsys, lvl := "", part
		if i := strings.IndexByte(part, '='); i >= 0 {
			subsys, lvl = strings.TrimSpace(part[:i]), strings.TrimSpace(part[i+1:])
			if subsys == "" {
				return fmt.Errorf("obs: bad level entry %q: empty subsystem", part)
			}
		}
		var l slog.Level
		if err := l.UnmarshalText([]byte(lvl)); err != nil {
			return fmt.Errorf("obs: bad level %q in %q", lvl, part)
		}
		SetLogLevel(subsys, l)
	}
	return nil
}

// LogLevels snapshots the current configuration: the "" key is the
// default level, the rest are per-subsystem overrides.
func LogLevels() map[string]string {
	out := map[string]string{"": slog.Level(logLevels.def.Load()).String()}
	logLevels.mu.RLock()
	for s, l := range logLevels.override {
		out[s] = l.String()
	}
	logLevels.mu.RUnlock()
	return out
}

// subsysHandler filters by the subsystem's live level and stamps
// records with the subsystem and, when the context carries one, the
// current span identity.
type subsysHandler struct {
	subsys string
	attrs  []slog.Attr
	groups []string
}

func (h *subsysHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= logLevels.level(h.subsys)
}

func (h *subsysHandler) Handle(ctx context.Context, r slog.Record) error {
	inner := *logSink.Load()
	for _, g := range h.groups {
		inner = inner.WithGroup(g)
	}
	if len(h.attrs) > 0 {
		inner = inner.WithAttrs(h.attrs)
	}
	r.AddAttrs(slog.String("subsys", h.subsys))
	if sc := SpanContextFrom(ctx); sc.Valid() {
		r.AddAttrs(
			slog.String("trace_id", sc.Trace),
			slog.String("span_id", fmt.Sprintf("%016x", uint64(sc.Span))),
		)
	}
	return inner.Handle(ctx, r)
}

func (h *subsysHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &nh
}

func (h *subsysHandler) WithGroup(name string) slog.Handler {
	nh := *h
	nh.groups = append(append([]string(nil), h.groups...), name)
	return &nh
}

// Logger returns the structured logger for a subsystem. Use the
// *Context methods (InfoContext, ...) with a span-carrying context and
// the record is stamped with trace_id/span_id automatically.
func Logger(subsys string) *slog.Logger {
	return slog.New(&subsysHandler{subsys: subsys})
}

// LogLevelHandler serves the live level configuration: GET returns the
// current map, PUT/POST with ?level=<spec> (or a bare spec as the
// body) applies ParseLevelSpec — mount it at /debug/loglevel.
func LogLevelHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeLevels(w)
		case http.MethodPut, http.MethodPost:
			spec := r.URL.Query().Get("level")
			if spec == "" {
				body, err := io.ReadAll(io.LimitReader(r.Body, 4096))
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				spec = strings.TrimSpace(string(body))
			}
			if spec == "" {
				http.Error(w, "missing level spec (?level=info,wal=debug)", http.StatusBadRequest)
				return
			}
			if err := ParseLevelSpec(spec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeLevels(w)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

func writeLevels(w http.ResponseWriter) {
	levels := LogLevels()
	keys := make([]string, 0, len(levels))
	for k := range levels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]string, len(levels))
	for _, k := range keys {
		name := k
		if name == "" {
			name = "default"
		}
		ordered[name] = levels[k]
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ordered)
}
