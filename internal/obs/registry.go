// Package obs is the observability substrate for the virtual data
// grid: a concurrency-safe metrics registry exposed in Prometheus text
// format, and a lightweight span tracer with a Chrome trace-event
// exporter. It is stdlib-only so every layer of the system can depend
// on it without pulling in external collectors.
//
// Metrics are organized as labeled families. Hot paths should resolve
// their series once (package init or struct construction) and hold the
// returned *Counter/*Gauge/*Histogram, whose update operations are
// single atomic instructions — no locks, no allocation:
//
//	var ops = obs.Default.CounterVec("vdc_catalog_ops_total", "Catalog ops.", "op")
//	var opAdd = ops.With("add_dataset")
//	...
//	opAdd.Inc()
//
// Registration is get-or-create: asking for an existing family with
// the same kind and labels returns it, so independent packages (and
// repeated test setups) can declare the metrics they use.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TimeBuckets are the default latency histogram bounds in seconds,
// spanning microsecond WAL appends to multi-second snapshots.
var TimeBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10,
}

// Default is the process-wide registry; the packages of this repo
// register their metric families here.
var Default = NewRegistry()

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are not on single-instruction hot
// paths the way counters are).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are upper bounds
// in ascending order; an implicit +Inf bucket catches the tail.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// family is one named metric with a set of labeled series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]any // label-values key -> *Counter/*Gauge/*Histogram
}

const labelSep = "\x1f"

func (f *family) get(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	var nw any
	switch f.kind {
	case kindCounter:
		nw = &Counter{}
	case kindGauge:
		nw = &Gauge{}
	default:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Uint64, len(f.buckets)+1)
		nw = h
	}
	f.series[key] = nw
	return nw
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With resolves (creating if needed) the series for the label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).(*Counter) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With resolves the series for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).(*Gauge) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With resolves the series for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).(*Histogram) }

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()

	runtimeOn atomic.Bool // EnableRuntimeMetrics already wired
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind or label set", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]any),
	}
	if kind == kindHistogram {
		if len(buckets) == 0 {
			buckets = TimeBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
	r.families[name] = f
	return f
}

// Counter registers (or retrieves) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).get(nil).(*Counter)
}

// CounterVec registers (or retrieves) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, nil, labels)}
}

// Gauge registers (or retrieves) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).get(nil).(*Gauge)
}

// GaugeVec registers (or retrieves) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, nil, labels)}
}

// Histogram registers (or retrieves) an unlabeled histogram. Nil
// buckets means TimeBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, buckets, nil).get(nil).(*Histogram)
}

// HistogramVec registers (or retrieves) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, buckets, labels)}
}

// RegisterCollector adds a hook run at the start of every
// WritePrometheus call, before families are rendered. Collectors
// refresh scrape-time gauges (runtime stats, queue depths sampled from
// live structures) so their cost is paid per scrape, not per event.
func (r *Registry) RegisterCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// WritePrometheus renders every family in Prometheus text exposition
// format (sorted by family name, then label values). Registered
// collectors run first to refresh scrape-time gauges.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}

	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		key string
		s   any
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{k, f.series[k]})
	}
	f.mu.RUnlock()
	if len(rows) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, r := range rows {
		var values []string
		if r.key != "" || len(f.labels) > 0 {
			values = strings.Split(r.key, labelSep)
		}
		switch s := r.s.(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), s.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(s.Value()))
		case *Histogram:
			cum := uint64(0)
			for i, bound := range s.bounds {
				cum += s.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, "le", formatFloat(bound)), cum)
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, values, "le", "+Inf"), s.Count())
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(s.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), s.Count())
		}
	}
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (used for histogram "le"); it returns "" when there are no pairs.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
