package obs

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: "0af7651916cd43dd8448eb211c80319c", Span: 0x00f067aa0ba902b7}
	h := sc.Traceparent()
	if h != "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01" {
		t.Fatalf("traceparent = %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}

	// Negative spans must survive the uint64 hex round trip.
	neg := SpanContext{Trace: sc.Trace, Span: -42}
	got, ok = ParseTraceparent(neg.Traceparent())
	if !ok || got.Span != -42 {
		t.Fatalf("negative span round trip: %+v ok=%v", got, ok)
	}

	if (SpanContext{}).Traceparent() != "" {
		t.Error("zero context must render empty")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01"
	bad := []string{
		"",
		valid[:54],             // truncated
		valid + "x",            // trailing garbage without separator
		"ff" + valid[2:],       // version ff is forbidden
		"0g" + valid[2:],       // non-hex version
		strings.ToUpper(valid), // uppercase hex is invalid per spec
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero parent
		"00_0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01", // bad separator
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	// Future versions may append fields after the flags.
	if _, ok := ParseTraceparent(valid + "-extra"); !ok {
		t.Error("future-version suffix rejected")
	}
	if _, ok := ParseTraceparent("01" + valid[2:]); !ok {
		t.Error("unknown (non-ff) version rejected")
	}
}

func TestStartSpanPropagation(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	rootCtx, root := StartSpan(ctx, "root")
	if root == nil || root.Context().Trace == "" {
		t.Fatal("root span missing trace ID")
	}
	childCtx, child := StartSpan(rootCtx, "child")
	if child.Context().Trace != root.Context().Trace {
		t.Error("child did not inherit the trace")
	}
	_, grand := StartSpan(childCtx, "grandchild")
	grand.SetError(errors.New("boom"))
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := make(map[string]SpanRecord)
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Error("child not parented to root")
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Error("grandchild not parented to child")
	}
	if byName["root"].Parent != 0 {
		t.Error("root must have no parent")
	}
	if byName["grandchild"].Attrs["error"] != "boom" {
		t.Error("SetError attr missing")
	}

	// Attrs set after End are discarded, not raced.
	grand.SetAttr("late", "x")
	for _, s := range tr.Spans() {
		if s.Name == "grandchild" && s.Attrs["late"] != "" {
			t.Error("attr set after End leaked into the record")
		}
	}
}

// TestStartSpanRemoteParent models the server side of propagation: a
// decoded traceparent joins the local span to the remote trace.
func TestStartSpanRemoteParent(t *testing.T) {
	// Client process.
	ct := NewTracer()
	cctx, fetch := StartSpan(WithTracer(context.Background(), ct), "fetch")
	header := Traceparent(cctx)
	if header == "" {
		t.Fatal("no traceparent for live span")
	}
	fetch.End()

	// Server process: fresh tracer, remote parent from the header.
	st := NewTracer()
	sctx := WithTracer(context.Background(), st)
	sc, ok := ParseTraceparent(header)
	if !ok {
		t.Fatal("server rejected client header")
	}
	sctx = WithSpanContext(sctx, sc)
	_, serve := StartSpan(sctx, "serve")
	serve.End()

	got := st.Spans()[0]
	if got.Trace != fetch.Context().Trace {
		t.Errorf("server span trace %q, want client trace %q", got.Trace, fetch.Context().Trace)
	}
	if got.Parent != fetch.Context().Span {
		t.Errorf("server span parent %d, want client span %d", got.Parent, fetch.Context().Span)
	}
}

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "x")
	if s != nil || ctx2 != ctx {
		t.Fatal("no-tracer StartSpan must be a no-op")
	}
	s.SetAttr("k", "v") // nil receiver must not panic
	s.SetError(errors.New("e"))
	s.End()
	if Traceparent(ctx2) != "" {
		t.Error("no-op span leaked a traceparent")
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer()
	tr.Limit = 2
	for i := 0; i < 5; i++ {
		tr.Record(SpanRecord{Name: "s"})
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
}

// TestTraceStorm hammers one tracer from many goroutines — concurrent
// span trees, attrs, and exports — and is run under -race in CI.
func TestTraceStorm(t *testing.T) {
	tr := NewTracer()
	tr.Limit = 10000
	ctx := WithTracer(context.Background(), tr)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c1, parent := StartSpan(ctx, "parent")
				_, child := StartSpan(c1, "child")
				child.SetAttr("i", "x")
				child.End()
				parent.SetError(nil)
				parent.End()
			}
		}()
	}
	// Concurrent readers/exporters while spans are recorded.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := tr.WriteChromeTrace(io.Discard); err != nil {
					t.Error(err)
					return
				}
				tr.Spans()
				tr.Len()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != 8*200*2 {
		t.Errorf("recorded+dropped = %d, want %d", got, 8*200*2)
	}
}

// BenchmarkSpanStart measures the disabled-tracer fast path: the cost
// instrumented code pays when no tracer is attached. Budget: a few
// context lookups, no allocation beyond them — tens of ns.
func BenchmarkSpanStart(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}

// BenchmarkSpanStartEnabled measures the recording path.
func BenchmarkSpanStartEnabled(b *testing.B) {
	tr := NewTracer()
	tr.Limit = 1 // retain nothing: measures start/end, not append growth
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}
