package obs

import (
	"strings"
	"testing"
)

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	EnableRuntimeMetrics(r)
	EnableRuntimeMetrics(r) // idempotent: no duplicate registration panic

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"vdc_go_goroutines", "vdc_go_heap_alloc_bytes", "vdc_go_gc_runs_total",
		"vdc_process_uptime_seconds",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
	// The scrape-time collector must have run: a live process has at
	// least one goroutine and a nonzero heap.
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "vdc_go_goroutines "); ok {
			if strings.TrimSpace(rest) == "0" {
				t.Error("goroutine gauge not refreshed at scrape time")
			}
		}
	}
}

func TestRegisterCollector(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_collected", "Refreshed at scrape.")
	calls := 0
	r.RegisterCollector(func() { calls++; g.Set(float64(calls)) })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || !strings.Contains(sb.String(), "test_collected 1") {
		t.Errorf("collector ran %d times; exposition:\n%s", calls, sb.String())
	}
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if calls != 2 || !strings.Contains(sb.String(), "test_collected 2") {
		t.Errorf("collector not re-run per scrape: %d\n%s", calls, sb.String())
	}
}
