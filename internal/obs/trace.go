package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span on a tracer's timeline. Times are
// offsets from the tracer's epoch, so spans sourced from real clocks
// and from simulated (virtual-time) drivers share one timeline. Trace
// groups the spans of one causally-connected request tree; spans
// recorded outside any trace (legacy direct Record calls) leave it
// empty.
type SpanRecord struct {
	ID     int64             `json:"id"`
	Parent int64             `json:"parent,omitempty"` // 0 = root
	Trace  string            `json:"trace,omitempty"`  // 32 hex chars
	Name   string            `json:"name"`
	Start  time.Duration     `json:"start"`
	End    time.Duration     `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// SpanContext is the propagatable identity of a span: which trace it
// belongs to and its own ID. It crosses process boundaries as a W3C
// traceparent header, so a federation member's server spans parent
// under the coordinator's fetch spans.
type SpanContext struct {
	// Trace is the 32-lowercase-hex-character trace ID.
	Trace string
	// Span is the span ID within the trace (0 = none).
	Span int64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != "" && sc.Span != 0 }

// Traceparent renders the context as a W3C trace-context header value
// (version 00, sampled flag set), or "" for an invalid context.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", sc.Trace, uint64(sc.Span))
}

// ParseTraceparent decodes a W3C traceparent header value. It accepts
// any non-ff version (per spec, unknown versions parse as 00) and
// rejects malformed or all-zero IDs.
func ParseTraceparent(s string) (SpanContext, bool) {
	// version(2) - trace-id(32) - parent-id(16) - flags(2); future
	// versions may append "-..." fields after the flags.
	if len(s) != 55 && (len(s) < 56 || s[55] != '-') {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if !isHex(s[:2]) || s[:2] == "ff" {
		return SpanContext{}, false
	}
	trace, parent := s[3:35], s[36:52]
	if !isHex(trace) || !isHex(parent) {
		return SpanContext{}, false
	}
	id, err := strconv.ParseUint(parent, 16, 64)
	if err != nil || id == 0 || allZero(trace) {
		return SpanContext{}, false
	}
	return SpanContext{Trace: trace, Span: int64(id)}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// newTraceID returns a fresh random 128-bit trace ID in lowercase hex.
func newTraceID() string {
	hi, lo := rand.Uint64(), rand.Uint64()
	if hi == 0 && lo == 0 {
		lo = 1
	}
	return fmt.Sprintf("%016x%016x", hi, lo)
}

// Tracer collects spans for one run. It is safe for concurrent use; a
// nil *Tracer is a valid no-op sink.
type Tracer struct {
	epoch time.Time
	seq   atomic.Int64

	// Limit, when positive, caps how many spans the tracer retains;
	// further Record calls are counted in Dropped instead of growing
	// memory without bound (a daemon's tracer outlives any one trace).
	// Set it before recording begins.
	Limit int

	dropped atomic.Uint64

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer starts an empty trace whose epoch is now. Span IDs are
// drawn from a randomly-seeded sequence so spans recorded by distinct
// tracers (different processes of a federation) do not collide when
// their traces are merged.
func NewTracer() *Tracer {
	t := &Tracer{epoch: time.Now()}
	t.seq.Store(rand.Int64N(1 << 61))
	return t
}

// NextID reserves a span ID, for callers that record parents after
// their children (e.g. a workflow root closed at completion).
func (t *Tracer) NextID() int64 {
	if t == nil {
		return 0
	}
	return t.seq.Add(1)
}

// Since returns the offset of now from the tracer epoch.
func (t *Tracer) Since() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Record appends a finished span. A zero ID is assigned one.
func (t *Tracer) Record(rec SpanRecord) {
	if t == nil {
		return
	}
	if rec.ID == 0 {
		rec.ID = t.NextID()
	}
	t.mu.Lock()
	if t.Limit > 0 && len(t.spans) >= t.Limit {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Dropped reports how many spans Record refused because of Limit.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Len reports how many finished spans the tracer holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the finished spans, in recording order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Span is an in-progress span started by StartSpan. A nil *Span is a
// valid no-op, so instrumented code never checks for a tracer.
type Span struct {
	t     *Tracer
	mu    sync.Mutex
	rec   SpanRecord
	ended bool
}

// ID returns the span's ID (0 for a no-op span).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// Context returns the span's propagatable identity (zero for a no-op
// span), suitable for Traceparent encoding.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.rec.Trace, Span: s.rec.ID}
}

// SetAttr attaches a key/value attribute. Attributes set after End are
// discarded (the record has already been published).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.rec.Attrs == nil {
			s.rec.Attrs = make(map[string]string)
		}
		s.rec.Attrs[k] = v
	}
	s.mu.Unlock()
}

// SetError marks the span failed with the error's message; a nil error
// is a no-op, so `defer span.SetError(err)`-style call sites stay
// unconditional.
func (s *Span) SetError(err error) {
	if err != nil {
		s.SetAttr("error", err.Error())
	}
}

// End finishes the span and records it; safe to call more than once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.End = s.t.Since()
	rec := s.rec
	s.mu.Unlock()
	s.t.Record(rec)
}

type tracerKey struct{}
type spanKey struct{}
type remoteKey struct{}

// WithTracer attaches a tracer to the context; StartSpan calls below
// it record onto this tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// WithSpanContext attaches a remote parent (typically decoded from an
// incoming traceparent header) to the context: the next StartSpan
// below it joins the remote trace and parents under the remote span.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// SpanContextFrom returns the identity of the context's current span:
// the innermost live StartSpan span if any, else a remote parent
// attached by WithSpanContext, else the zero SpanContext.
func SpanContextFrom(ctx context.Context) SpanContext {
	if s, _ := ctx.Value(spanKey{}).(*Span); s != nil {
		return s.Context()
	}
	sc, _ := ctx.Value(remoteKey{}).(SpanContext)
	return sc
}

// Traceparent renders the context's current span as a W3C traceparent
// header value, or "" when the context carries no span. Clients inject
// it on outbound requests; server middleware feeds the received value
// to ParseTraceparent + WithSpanContext.
func Traceparent(ctx context.Context) string {
	return SpanContextFrom(ctx).Traceparent()
}

// StartSpan opens a span named name under the context's current span
// (local, or a remote parent installed by WithSpanContext) and returns
// a derived context carrying it. The span joins the current trace, or
// starts a fresh one when the context has none. Without a tracer in
// ctx it returns ctx unchanged and a no-op span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := SpanContextFrom(ctx)
	trace := parent.Trace
	if trace == "" {
		trace = newTraceID()
	}
	s := &Span{t: t, rec: SpanRecord{
		ID:     t.NextID(),
		Parent: parent.Span,
		Trace:  trace,
		Name:   name,
		Start:  t.Since(),
	}}
	return context.WithValue(ctx, spanKey{}, s), s
}

// chromeEvent is one Chrome trace-event: "X" complete events for
// spans, "s"/"f" flow events for cross-lane parent links.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	ID   int64             `json:"id,omitempty"` // flow binding
	BP   string            `json:"bp,omitempty"` // flow binding point
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the finished spans in Chrome trace-event
// format (load via chrome://tracing or https://ui.perfetto.dev). Spans
// are packed onto lanes (tids) so that each lane is a properly nested
// flame graph: a span lands on its parent's lane when containment
// holds, and overflows to a fresh lane when siblings overlap in time
// (parallel DAG branches, concurrent member fetches). Parent links
// that cross lanes — the causal edges a flame graph alone cannot show
// — are rendered as flow events, so Perfetto draws arrows from a
// coordinator's fetch span to the remote server span it caused. The
// parent link is also kept in args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	// Parents first at equal start times.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End > spans[j].End
	})

	type lane struct{ open []time.Duration } // stack of open span end-times
	var lanes []*lane
	laneOf := make(map[int64]int, len(spans))

	place := func(s SpanRecord, li int) bool {
		l := lanes[li]
		for len(l.open) > 0 && l.open[len(l.open)-1] <= s.Start {
			l.open = l.open[:len(l.open)-1]
		}
		if len(l.open) > 0 && l.open[len(l.open)-1] < s.End {
			return false // would overlap, not nest
		}
		l.open = append(l.open, s.End)
		return true
	}

	events := make([]chromeEvent, 0, len(spans))
	var flows []chromeEvent
	bounds := make(map[int64][2]time.Duration, len(spans))
	for _, s := range spans {
		li := -1
		pl, onLane := laneOf[s.Parent]
		if onLane && place(s, pl) {
			li = pl
		} else {
			for i := range lanes {
				if onLane && i == pl {
					continue
				}
				if place(s, i) {
					li = i
					break
				}
			}
		}
		if li < 0 {
			lanes = append(lanes, &lane{})
			li = len(lanes) - 1
			place(s, li)
		}
		laneOf[s.ID] = li
		bounds[s.ID] = [2]time.Duration{s.Start, s.End}

		args := make(map[string]string, len(s.Attrs)+2)
		for k, v := range s.Attrs {
			args[k] = v
		}
		if s.Parent != 0 {
			args["parent"] = strconv.FormatInt(s.Parent, 10)
		}
		if s.Trace != "" {
			args["trace"] = s.Trace
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X",
			TS:  float64(s.Start.Microseconds()),
			Dur: float64((s.End - s.Start).Microseconds()),
			PID: 1, TID: li,
			Args: args,
		})

		// A parent on another lane: emit a flow arrow from the parent's
		// slice to this span's start. The start step must fall inside
		// the parent slice, so clamp it to the parent's bounds.
		if onLane && pl != li {
			ts := s.Start
			if pb := bounds[s.Parent]; ts < pb[0] {
				ts = pb[0]
			} else if ts > pb[1] {
				ts = pb[1]
			}
			flows = append(flows,
				chromeEvent{Name: "link", Cat: "flow", Ph: "s", ID: s.ID,
					TS: float64(ts.Microseconds()), PID: 1, TID: pl},
				chromeEvent{Name: "link", Cat: "flow", Ph: "f", BP: "e", ID: s.ID,
					TS: float64(s.Start.Microseconds()), PID: 1, TID: li})
		}
	}
	events = append(events, flows...)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the Chrome trace to path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
