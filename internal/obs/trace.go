package obs

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span on a tracer's timeline. Times are
// offsets from the tracer's epoch, so spans sourced from real clocks
// and from simulated (virtual-time) drivers share one timeline.
type SpanRecord struct {
	ID     int64             `json:"id"`
	Parent int64             `json:"parent,omitempty"` // 0 = root
	Name   string            `json:"name"`
	Start  time.Duration     `json:"start"`
	End    time.Duration     `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Tracer collects spans for one run. It is safe for concurrent use; a
// nil *Tracer is a valid no-op sink.
type Tracer struct {
	epoch time.Time
	seq   atomic.Int64

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer starts an empty trace whose epoch is now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// NextID reserves a span ID, for callers that record parents after
// their children (e.g. a workflow root closed at completion).
func (t *Tracer) NextID() int64 {
	if t == nil {
		return 0
	}
	return t.seq.Add(1)
}

// Since returns the offset of now from the tracer epoch.
func (t *Tracer) Since() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Record appends a finished span. A zero ID is assigned one.
func (t *Tracer) Record(rec SpanRecord) {
	if t == nil {
		return
	}
	if rec.ID == 0 {
		rec.ID = t.NextID()
	}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Spans returns a copy of the finished spans, in recording order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Span is an in-progress span started by StartSpan. A nil *Span is a
// valid no-op, so instrumented code never checks for a tracer.
type Span struct {
	t     *Tracer
	rec   SpanRecord
	mu    sync.Mutex
	ended bool
}

// ID returns the span's ID (0 for a no-op span).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string)
	}
	s.rec.Attrs[k] = v
	s.mu.Unlock()
}

// End finishes the span and records it; safe to call more than once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	done := s.ended
	s.ended = true
	s.mu.Unlock()
	if done {
		return
	}
	s.rec.End = s.t.Since()
	s.t.Record(s.rec)
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer attaches a tracer to the context; StartSpan calls below
// it record onto this tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan opens a span named name under the context's current span
// (if any) and returns a derived context carrying it. Without a tracer
// in ctx it returns ctx unchanged and a no-op span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := int64(0)
	if p, _ := ctx.Value(spanKey{}).(*Span); p != nil {
		parent = p.ID()
	}
	s := &Span{t: t, rec: SpanRecord{
		ID:     t.NextID(),
		Parent: parent,
		Name:   name,
		Start:  t.Since(),
	}}
	return context.WithValue(ctx, spanKey{}, s), s
}

// chromeEvent is one Chrome trace-event ("X" complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the finished spans in Chrome trace-event
// format (load via chrome://tracing or https://ui.perfetto.dev). Spans
// are packed onto lanes (tids) so that each lane is a properly nested
// flame graph: a span lands on its parent's lane when containment
// holds, and overflows to a fresh lane when siblings overlap in time
// (parallel DAG branches). The parent link is also kept in args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	// Parents first at equal start times.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End > spans[j].End
	})

	type lane struct{ open []time.Duration } // stack of open span end-times
	var lanes []*lane
	laneOf := make(map[int64]int, len(spans))

	place := func(s SpanRecord, li int) bool {
		l := lanes[li]
		for len(l.open) > 0 && l.open[len(l.open)-1] <= s.Start {
			l.open = l.open[:len(l.open)-1]
		}
		if len(l.open) > 0 && l.open[len(l.open)-1] < s.End {
			return false // would overlap, not nest
		}
		l.open = append(l.open, s.End)
		return true
	}

	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		li := -1
		if pl, ok := laneOf[s.Parent]; ok && place(s, pl) {
			li = pl
		} else {
			for i := range lanes {
				if ok && i == pl {
					continue
				}
				if place(s, i) {
					li = i
					break
				}
			}
		}
		if li < 0 {
			lanes = append(lanes, &lane{})
			li = len(lanes) - 1
			place(s, li)
		}
		laneOf[s.ID] = li

		args := make(map[string]string, len(s.Attrs)+1)
		for k, v := range s.Attrs {
			args[k] = v
		}
		if s.Parent != 0 {
			args["parent"] = strconv.FormatInt(s.Parent, 10)
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X",
			TS:  float64(s.Start.Microseconds()),
			Dur: float64((s.End - s.Start).Microseconds()),
			PID: 1, TID: li,
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the Chrome trace to path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
