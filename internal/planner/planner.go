// Package planner implements the planning facet (§5.2): mapping
// requests for virtual data products onto Grid resources. It decides
// whether a request is satisfied by existing data (reuse) or by
// computation, selects execution sites balancing queue load against
// data movement, realizes the paper's four procedure/data shipping
// patterns, and applies dynamic replication strategies (refs [18,19])
// as data is accessed.
package planner

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/estimator"
	"chimera/internal/executor"
	"chimera/internal/grid"
	"chimera/internal/obs"
	"chimera/internal/replica"
	"chimera/internal/schema"
)

// Planner metrics: placement latency and outcome counters.
var (
	metricAssignSeconds = obs.Default.Histogram("vdc_planner_assign_seconds",
		"Wall-clock latency of one placement decision.", obs.TimeBuckets)
	metricAssignments = obs.Default.Counter("vdc_planner_assignments_total",
		"Successful placement decisions.")
	metricAssignErrors = obs.Default.Counter("vdc_planner_assign_errors_total",
		"Placement decisions that found no feasible site.")
	metricReplicas = obs.Default.Counter("vdc_planner_replications_total",
		"Replicas created by the dynamic replication policy.")
	metricAssignCache = obs.Default.CounterVec("vdc_planner_assign_cache_total",
		"Assign-cache lookups of replica sites and dataset sizes; miss means a catalog read.", "outcome")
	assignCacheHit  = metricAssignCache.With("hit")
	assignCacheMiss = metricAssignCache.With("miss")

	metricGridReplicas = obs.Default.Counter("vdc_grid_replicas_created_total",
		"Dynamic replicas created on the simulated grid by replication policies.")
	metricGridEvictions = obs.Default.Counter("vdc_grid_evictions_total",
		"Replicas evicted from simulated storage elements by reclamation.")
	metricReplicaSkips = obs.Default.Counter("vdc_planner_replica_storage_skips_total",
		"Replica creations skipped because the destination storage element was full.")
)

// DebugStats reports the dynamic-replication counters for runtime
// introspection (/debug/vdc).
func DebugStats() map[string]any {
	return map[string]any{
		"replicas_created_total":      metricGridReplicas.Value(),
		"evictions_total":             metricGridEvictions.Value(),
		"replica_storage_skips_total": metricReplicaSkips.Value(),
	}
}

// Profile keys the planner interprets on transformations.
const (
	// ProfileHomeSites pins a procedure to a comma-separated site list
	// (pattern 1/2: procedure collocated with its service sites).
	ProfileHomeSites = "hints.homeSites"
	// ProfileInstallSeconds is the cost of provisioning the procedure
	// at a non-home site (§4.3 resource virtualization); unset means
	// the procedure cannot leave its home sites.
	ProfileInstallSeconds = "hints.installSeconds"
)

// Mode selects the placement policy.
type Mode int

const (
	// Auto minimizes estimated completion time over all feasible sites.
	Auto Mode = iota
	// ShipDataToProcedure always runs at a procedure home site.
	ShipDataToProcedure
	// ShipProcedureToData always runs where most input bytes reside.
	ShipProcedureToData
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ShipDataToProcedure:
		return "ship-data"
	case ShipProcedureToData:
		return "ship-procedure"
	default:
		return "auto"
	}
}

// Planner maps workflow nodes to grid placements.
type Planner struct {
	Cat     *catalog.Catalog
	Est     *estimator.Estimator
	Cluster *grid.Cluster
	// Mode selects the shipping pattern policy.
	Mode Mode
	// Replication is applied on each cross-site access (nil = none).
	Replication ReplicationPolicy
	// DefaultSize is assumed for datasets of unknown size.
	DefaultSize int64
	// NoiseAmp passes runtime jitter into placements.
	NoiseAmp float64
	// DisablePendingLoad turns off the planner's tracking of
	// assigned-but-unfinished work when estimating queue delay. With it
	// disabled, bursts of ready nodes all see empty queues and pile
	// onto the data's home site (the A2 ablation in the harness).
	DisablePendingLoad bool
	// Pop, when set, tracks time-decayed dataset popularity (feed it to
	// a PopularityDriven policy); economy eviction prices replicas
	// with it.
	Pop *replica.Popularity
	// SimNow supplies the simulation clock for popularity decay
	// (nil = constant zero: no decay).
	SimNow func() float64
	// EconomyEviction turns on reclaim-on-full economics: when a new
	// replica does not fit its destination storage element, the lowest-
	// valued replicas there (value = popularity × transfer-cost-saved)
	// are evicted to make room. Off, a full destination just skips the
	// replica.
	EconomyEviction bool
	// LinkClassWeight scales staging costs per bandwidth-hierarchy link
	// class (grid.ClassRegional, grid.ClassTransatlantic, ...); unset
	// classes weigh 1. Weighting transatlantic links above their raw
	// transfer time biases placement toward keeping traffic low in the
	// hierarchy even when thin links are idle.
	LinkClassWeight map[string]float64

	mu        sync.Mutex
	accesses  map[string]map[string]int // dataset -> site -> count
	pending   map[string]int            // site -> assigned-but-unfinished jobs
	allocated map[string]int64          // replica ID -> bytes reserved by this planner
	repSeq    int
}

// New returns a planner over the given catalog, estimator and cluster.
func New(cat *catalog.Catalog, est *estimator.Estimator, cl *grid.Cluster) *Planner {
	return &Planner{
		Cat: cat, Est: est, Cluster: cl,
		DefaultSize: 1 << 20,
		accesses:    make(map[string]map[string]int),
		pending:     make(map[string]int),
		allocated:   make(map[string]int64),
	}
}

// OnEvent lets the planner track in-flight assignments: wire it to the
// executor's OnEvent so queue-pressure estimates see work that has been
// placed but not yet reached a host queue (e.g. while staging).
func (p *Planner) OnEvent(ev executor.Event) {
	switch ev.Kind {
	case "done", "fail", "retry":
		p.mu.Lock()
		if site := ev.Result.Site; site != "" && p.pending[site] > 0 {
			p.pending[site]--
		}
		p.mu.Unlock()
	}
}

// pendingLoad is the planner's own outstanding jobs per core at a site.
func (p *Planner) pendingLoad(site string) float64 {
	if p.DisablePendingLoad {
		return 0
	}
	s, ok := p.Cluster.Grid.Site(site)
	if !ok || len(s.Hosts) == 0 {
		return 0
	}
	cores := 0
	for _, h := range s.Hosts {
		cores += h.Cores
	}
	p.mu.Lock()
	n := p.pending[site]
	p.mu.Unlock()
	return float64(n) / float64(cores)
}

// meanSpeed averages the host speeds at a site (1.0 when unknown).
func (p *Planner) meanSpeed(site string) float64 {
	s, ok := p.Cluster.Grid.Site(site)
	if !ok || len(s.Hosts) == 0 {
		return 1
	}
	sum := 0.0
	for _, h := range s.Hosts {
		sum += h.Speed
	}
	return sum / float64(len(s.Hosts))
}

// assignCache memoizes the catalog lookups one placement decision
// repeats: replica-site sets and dataset sizes. siteCost re-reads the
// same inputs for every candidate site, so an uncached Assign pays
// O(sites × inputs × replicas) in catalog lock traffic; the cache cuts
// it to one catalog read per distinct dataset. The cache lives for a
// single Assign (or noteAccess) — replicas materialized by later nodes
// are always observed fresh — and is invalidated per dataset when the
// replication policy itself adds a replica mid-decision.
type assignCache struct {
	p     *Planner
	sites map[string][]string
	sizes map[string]int64
}

func (p *Planner) newAssignCache() *assignCache {
	return &assignCache{
		p:     p,
		sites: make(map[string][]string),
		sizes: make(map[string]int64),
	}
}

func (c *assignCache) replicaSites(ds string) []string {
	if s, ok := c.sites[ds]; ok {
		assignCacheHit.Inc()
		return s
	}
	assignCacheMiss.Inc()
	s := c.p.replicaSites(ds)
	c.sites[ds] = s
	return s
}

func (c *assignCache) sizeOf(ds string) int64 {
	if v, ok := c.sizes[ds]; ok {
		assignCacheHit.Inc()
		return v
	}
	assignCacheMiss.Inc()
	v := c.p.sizeOf(ds)
	c.sizes[ds] = v
	return v
}

// invalidate drops a dataset's cached replica sites after a mutation.
func (c *assignCache) invalidate(ds string) { delete(c.sites, ds) }

// sizeOf estimates a dataset's size from its record, its replicas, or
// — for an unmaterialized derived output — the estimator's byte model
// of its producing transformation, before falling back to DefaultSize.
func (p *Planner) sizeOf(ds string) int64 {
	rec, recErr := p.Cat.Dataset(ds)
	if recErr == nil && rec.Size > 0 {
		return rec.Size
	}
	for _, r := range p.Cat.ReplicasOf(ds) {
		if r.Size > 0 {
			return r.Size
		}
	}
	if recErr == nil && rec.CreatedBy != "" && p.Est != nil {
		if dv, err := p.Cat.Derivation(rec.CreatedBy); err == nil {
			if _, out := p.Est.Bytes(dv.TR); out > 0 {
				return int64(out)
			}
		}
	}
	return p.DefaultSize
}

// transferCost predicts staging seconds between sites, weighted by the
// bandwidth-hierarchy class of the path.
func (p *Planner) transferCost(from, to string, bytes int64) (float64, error) {
	t, err := p.Cluster.Grid.TransferTime(from, to, bytes)
	if err != nil {
		return 0, err
	}
	if len(p.LinkClassWeight) > 0 {
		if w, ok := p.LinkClassWeight[p.Cluster.Grid.ClassBetween(from, to)]; ok && w > 0 {
			t *= w
		}
	}
	return t, nil
}

// replicaSites returns the sites holding a current-epoch replica.
func (p *Planner) replicaSites(ds string) []string {
	rec, err := p.Cat.Dataset(ds)
	if err != nil {
		return nil
	}
	var sites []string
	seen := make(map[string]bool)
	for _, r := range p.Cat.ReplicasOf(ds) {
		if r.Epoch == rec.Epoch && !seen[r.Site] {
			seen[r.Site] = true
			sites = append(sites, r.Site)
		}
	}
	sort.Strings(sites)
	return sites
}

// bestSource returns the replica site with the cheapest transfer to
// dst, with its predicted seconds; ok=false if no replica exists.
func (p *Planner) bestSource(ds, dst string, lc *assignCache) (site string, seconds float64, ok bool) {
	best := math.Inf(1)
	size := lc.sizeOf(ds)
	for _, s := range lc.replicaSites(ds) {
		t, err := p.transferCost(s, dst, size)
		if err != nil {
			continue
		}
		if t < best || (t == best && s < site) {
			best, site, ok = t, s, true
		}
	}
	return site, best, ok
}

// homeSites parses the procedure-pinning profile.
func homeSites(tr schema.Transformation) []string {
	raw := tr.Profile[ProfileHomeSites]
	if raw == "" {
		return nil
	}
	var out []string
	for _, s := range strings.Split(raw, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// installCost parses the provisioning-cost profile. A malformed value
// (trailing garbage, negative, NaN/Inf) means the procedure cannot be
// provisioned elsewhere — the same as an absent profile — rather than
// silently truncating ("5x" used to parse as 5 via Sscanf).
func installCost(tr schema.Transformation) (float64, bool) {
	raw := strings.TrimSpace(tr.Profile[ProfileInstallSeconds])
	if raw == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, false
	}
	return v, true
}

// siteCost estimates completion seconds for running node n at site:
// queue delay + input staging + procedure provisioning + execution.
func (p *Planner) siteCost(n *dag.Node, tr schema.Transformation, site string, lc *assignCache) (float64, []executor.StageIn, error) {
	if len(p.Cluster.Grid.HostNames(site)) == 0 {
		return 0, nil, fmt.Errorf("planner: site %q has no compute hosts", site)
	}
	// Execution time scales inversely with the site's host speed.
	refWork, _ := p.Est.Work(n.Derivation.TR)
	work := refWork / p.meanSpeed(site)
	var transfers []executor.StageIn
	cost := 0.0

	// Queue delay: jobs ahead of us (both in host queues and assigned
	// by this planner but still staging), normalized by capacity.
	cost += (p.Cluster.SiteLoad(site) + p.pendingLoad(site)) * work

	// Input staging.
	for _, in := range n.Inputs {
		sites := lc.replicaSites(in)
		if containsStr(sites, site) {
			continue
		}
		src, secs, ok := p.bestSource(in, site, lc)
		if !ok {
			return 0, nil, fmt.Errorf("planner: no replica of %q reachable from %q", in, site)
		}
		cost += secs
		transfers = append(transfers, executor.StageIn{Dataset: in, FromSite: src, Bytes: lc.sizeOf(in)})
	}

	// Procedure provisioning.
	homes := homeSites(tr)
	if len(homes) > 0 && !containsStr(homes, site) {
		ic, movable := installCost(tr)
		if !movable {
			return 0, nil, fmt.Errorf("planner: procedure %s unavailable at %q", tr.Ref(), site)
		}
		cost += ic
	}

	cost += work
	return cost, transfers, nil
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// candidateSites returns the feasible sites for a node under the
// current mode.
func (p *Planner) candidateSites(n *dag.Node, tr schema.Transformation, lc *assignCache) []string {
	all := p.Cluster.Grid.Sites()
	homes := homeSites(tr)
	_, movable := installCost(tr)
	switch p.Mode {
	case ShipDataToProcedure:
		if len(homes) > 0 {
			return homes
		}
		return all
	case ShipProcedureToData:
		// Site holding the most input bytes.
		byBytes := make(map[string]int64)
		for _, in := range n.Inputs {
			for _, s := range lc.replicaSites(in) {
				byBytes[s] += lc.sizeOf(in)
			}
		}
		best, bestBytes := "", int64(-1)
		for _, s := range all {
			if len(homes) > 0 && !movable && !containsStr(homes, s) {
				continue
			}
			if byBytes[s] > bestBytes || (byBytes[s] == bestBytes && s < best) {
				best, bestBytes = s, byBytes[s]
			}
		}
		if best != "" {
			return []string{best}
		}
		return all
	default:
		if len(homes) > 0 && !movable {
			return homes
		}
		return all
	}
}

// Assign implements the executor's placement callback: it is invoked as
// each node becomes ready, so decisions see current queue state and the
// replicas materialized by earlier nodes.
func (p *Planner) Assign(n *dag.Node) (executor.Placement, error) {
	defer metricAssignSeconds.ObserveSince(time.Now())
	tr, err := p.Cat.Transformation(n.Derivation.TR)
	if err != nil {
		metricAssignErrors.Inc()
		return executor.Placement{}, err
	}
	// One cache per decision: every candidate site sees the same
	// replica-site sets and sizes, read from the catalog once.
	lc := p.newAssignCache()
	var (
		bestSite  string
		bestCost  = math.Inf(1)
		bestXfers []executor.StageIn
		lastErr   error
	)
	for _, site := range p.candidateSites(n, tr, lc) {
		cost, xfers, err := p.siteCost(n, tr, site, lc)
		if err != nil {
			lastErr = err
			continue
		}
		if cost < bestCost || (cost == bestCost && site < bestSite) {
			bestSite, bestCost, bestXfers = site, cost, xfers
		}
	}
	if math.IsInf(bestCost, 1) {
		metricAssignErrors.Inc()
		if lastErr != nil {
			return executor.Placement{}, lastErr
		}
		return executor.Placement{}, errors.New("planner: no feasible site")
	}
	metricAssignments.Inc()

	work, _ := p.Est.Work(n.Derivation.TR)
	outBytes := make(map[string]int64, len(n.Outputs))
	for _, out := range n.Outputs {
		outBytes[out] = lc.sizeOf(out)
	}
	// Record accesses and apply the replication policy.
	for _, x := range bestXfers {
		p.noteAccess(x.Dataset, bestSite, x.Bytes, lc)
	}
	p.mu.Lock()
	p.pending[bestSite]++
	p.mu.Unlock()
	return executor.Placement{
		Site:        bestSite,
		Work:        work,
		NoiseAmp:    p.NoiseAmp,
		Transfers:   bestXfers,
		OutputBytes: outBytes,
	}, nil
}

// noteAccess bumps the access count for (dataset, site) and applies the
// replication policy, registering any new replicas and issuing their
// background transfers.
func (p *Planner) noteAccess(ds, site string, bytes int64, lc *assignCache) {
	p.mu.Lock()
	m := p.accesses[ds]
	if m == nil {
		m = make(map[string]int)
		p.accesses[ds] = m
	}
	m[site]++
	snapshot := make(map[string]int, len(m))
	for k, v := range m {
		snapshot[k] = v
	}
	p.mu.Unlock()
	m = snapshot
	if p.Replication == nil {
		return
	}
	src, _, ok := p.bestSource(ds, site, lc)
	if !ok {
		return
	}
	for _, dst := range p.Replication.OnAccess(ds, bytes, src, site, m) {
		if containsStr(lc.replicaSites(ds), dst) {
			continue
		}
		rec, err := p.Cat.Dataset(ds)
		if err != nil {
			continue
		}
		if !p.reserveStorage(dst, bytes) {
			metricReplicaSkips.Inc()
			continue
		}
		p.mu.Lock()
		p.repSeq++
		seq := p.repSeq
		p.mu.Unlock()
		rep := schema.Replica{
			ID:      fmt.Sprintf("cache-%s-%s-%d", ds, dst, seq),
			Dataset: ds, Site: dst,
			PFN:   fmt.Sprintf("/cache/%s/%s", dst, ds),
			Size:  bytes,
			Epoch: rec.Epoch,
			Attrs: schema.Attributes{"replication": p.Replication.Name()},
		}
		if err := p.Cat.AddReplica(rep); err != nil {
			p.unreserveStorage(dst, bytes)
			continue
		}
		p.mu.Lock()
		p.allocated[rep.ID] = bytes
		p.mu.Unlock()
		lc.invalidate(ds)
		metricReplicas.Inc()
		metricGridReplicas.Inc()
		if dst != site {
			// Push replicas move bytes in the background; cache-at-
			// client replicas reuse the staging transfer already paid.
			p.Cluster.TransferData(&grid.Transfer{
				ID: rep.ID, From: src, To: dst, Bytes: bytes,
			})
		}
	}
}

// reserveStorage allocates bytes for a new replica at a site's storage
// element. When the element is full and EconomyEviction is on, the
// lowest-valued replicas there are reclaimed first. Reports whether
// the reservation succeeded; unknown sites refuse.
func (p *Planner) reserveStorage(site string, bytes int64) bool {
	s, ok := p.Cluster.Grid.Site(site)
	if !ok {
		return false
	}
	if s.Storage == nil {
		return true
	}
	if s.Storage.Alloc(bytes) == nil {
		return true
	}
	if !p.EconomyEviction {
		return false
	}
	if _, err := p.Reclaim(site, bytes-s.Storage.Free()); err != nil {
		return false
	}
	return s.Storage.Alloc(bytes) == nil
}

// unreserveStorage returns a reservation made by reserveStorage that
// never became a tracked replica.
func (p *Planner) unreserveStorage(site string, bytes int64) {
	if s, ok := p.Cluster.Grid.Site(site); ok && s.Storage != nil {
		s.Storage.Release(bytes)
	}
}

// AccessCount reports recorded accesses of a dataset by site.
func (p *Planner) AccessCount(ds string) map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.accesses[ds]))
	for s, n := range p.accesses[ds] {
		out[s] = n
	}
	return out
}
