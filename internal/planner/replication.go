package planner

import "chimera/internal/replica"

// ReplicationPolicy decides, on each cross-site access of a dataset,
// which sites should receive new replicas. These are the dynamic
// replication strategies of the paper's references [18,19], adapted to
// the flat multi-site mesh of the simulated testbed.
type ReplicationPolicy interface {
	// Name labels the policy in replica records and reports.
	Name() string
	// OnAccess is invoked after site `by` fetched dataset `ds` (size
	// bytes) from `from`. accesses holds cumulative access counts per
	// site, including this one. It returns the sites to replicate to.
	OnAccess(ds string, size int64, from, by string, accesses map[string]int) []string
}

// NoReplication never replicates: every remote access re-transfers.
type NoReplication struct{}

// Name implements ReplicationPolicy.
func (NoReplication) Name() string { return "none" }

// OnAccess implements ReplicationPolicy.
func (NoReplication) OnAccess(string, int64, string, string, map[string]int) []string { return nil }

// CacheAtClient keeps a copy at every site that fetches the dataset
// (plain caching: the bytes already moved, so the copy is free).
type CacheAtClient struct{}

// Name implements ReplicationPolicy.
func (CacheAtClient) Name() string { return "cache" }

// OnAccess implements ReplicationPolicy.
func (CacheAtClient) OnAccess(_ string, _ int64, _, by string, _ map[string]int) []string {
	return []string{by}
}

// BestClient pushes a replica to the single most-demanding site once
// its accesses reach Threshold — ref [19]'s best-client strategy.
type BestClient struct {
	Threshold int
}

// Name implements ReplicationPolicy.
func (BestClient) Name() string { return "best-client" }

// OnAccess implements ReplicationPolicy.
func (b BestClient) OnAccess(_ string, _ int64, _, _ string, accesses map[string]int) []string {
	th := b.Threshold
	if th <= 0 {
		th = 3
	}
	best, bestN := "", 0
	for s, n := range accesses {
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	if bestN >= th {
		return []string{best}
	}
	return nil
}

// CacheAndBestClient combines plain caching with best-client pushes.
type CacheAndBestClient struct {
	Threshold int
}

// Name implements ReplicationPolicy.
func (CacheAndBestClient) Name() string { return "cache+best-client" }

// OnAccess implements ReplicationPolicy.
func (c CacheAndBestClient) OnAccess(ds string, size int64, from, by string, accesses map[string]int) []string {
	out := CacheAtClient{}.OnAccess(ds, size, from, by, accesses)
	out = append(out, BestClient{Threshold: c.Threshold}.OnAccess(ds, size, from, by, accesses)...)
	return out
}

// Broadcast replicates to every requesting site once total accesses
// reach Threshold — an aggressive pre-staging strategy.
type Broadcast struct {
	Threshold int
}

// Name implements ReplicationPolicy.
func (Broadcast) Name() string { return "broadcast" }

// OnAccess implements ReplicationPolicy.
func (b Broadcast) OnAccess(_ string, _ int64, _, _ string, accesses map[string]int) []string {
	th := b.Threshold
	if th <= 0 {
		th = 3
	}
	total := 0
	for _, n := range accesses {
		total += n
	}
	if total < th {
		return nil
	}
	var out []string
	for s := range accesses {
		out = append(out, s)
	}
	return out
}

// PopularityDriven replicates to a requesting site once its
// exponentially decayed access score crosses Threshold — the
// popularity-based strategy of ref [18] and the Venugopal taxonomy.
// Unlike BestClient's lifetime counts, decay means a site must be hot
// *now*: bursts of community interest trigger replicas, while datasets
// popular last week age back below threshold.
type PopularityDriven struct {
	// Pop holds the decayed scores. Required.
	Pop *replica.Popularity
	// Now supplies the clock for decay (simulated seconds). Nil means
	// a constant clock: with no elapsed time, scores never decay, and
	// the policy degrades to per-site access counting.
	Now func() float64
	// Threshold is the decayed score that triggers a replica
	// (default 3, matching the other threshold policies).
	Threshold float64
}

// Name implements ReplicationPolicy.
func (PopularityDriven) Name() string { return "popularity" }

// OnAccess implements ReplicationPolicy.
func (p PopularityDriven) OnAccess(ds string, _ int64, _, by string, _ map[string]int) []string {
	if p.Pop == nil {
		return nil
	}
	th := p.Threshold
	if th <= 0 {
		th = 3
	}
	now := 0.0
	if p.Now != nil {
		now = p.Now()
	}
	if p.Pop.Bump(ds, by, now) >= th {
		return []string{by}
	}
	return nil
}

// Policies returns the named built-in policies for sweeps.
func Policies(threshold int) []ReplicationPolicy {
	return []ReplicationPolicy{
		NoReplication{},
		CacheAtClient{},
		BestClient{Threshold: threshold},
		CacheAndBestClient{Threshold: threshold},
		Broadcast{Threshold: threshold},
		PopularityDriven{Pop: replica.NewPopularity(0), Threshold: float64(threshold)},
	}
}
