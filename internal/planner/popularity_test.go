package planner

import (
	"testing"

	"chimera/internal/grid"
	"chimera/internal/replica"
	"chimera/internal/schema"
)

func TestPopularityDecay(t *testing.T) {
	pop := replica.NewPopularity(100) // half-life 100s
	pop.Bump("d", "west", 0)
	pop.Bump("d", "west", 0)
	if got := pop.Score("d", "west", 0); got != 2 {
		t.Errorf("score at t=0: %g", got)
	}
	// One half-life later the score has halved.
	if got := pop.Score("d", "west", 100); got != 1 {
		t.Errorf("score after one half-life: %g", got)
	}
	// A bump after decay adds to the decayed value, not the raw count.
	if got := pop.Bump("d", "west", 100); got != 2 {
		t.Errorf("bump after decay: %g", got)
	}
	if got := pop.Total("d", 100); got != 2 {
		t.Errorf("total: %g", got)
	}
	pop.Bump("d", "east", 100)
	if site, _ := pop.Hottest("d", 100); site != "west" {
		t.Errorf("hottest: %s", site)
	}
	pop.Forget("d", "west")
	if got := pop.Score("d", "west", 100); got != 0 {
		t.Errorf("score after forget: %g", got)
	}
	if site, _ := pop.Hottest("d", 100); site != "east" {
		t.Errorf("hottest after forget: %s", site)
	}
	// Zero half-life: plain counting, no decay.
	flat := replica.NewPopularity(0)
	flat.Bump("d", "west", 0)
	if got := flat.Score("d", "west", 1e9); got != 1 {
		t.Errorf("flat tracker decayed: %g", got)
	}
}

func TestPopularityDrivenPolicy(t *testing.T) {
	now := 0.0
	pol := PopularityDriven{
		Pop:       replica.NewPopularity(50),
		Now:       func() float64 { return now },
		Threshold: 3,
	}
	if got := pol.OnAccess("d", 1, "east", "west", nil); got != nil {
		t.Errorf("first access replicated: %v", got)
	}
	if got := pol.OnAccess("d", 1, "east", "west", nil); got != nil {
		t.Errorf("second access replicated: %v", got)
	}
	if got := pol.OnAccess("d", 1, "east", "west", nil); len(got) != 1 || got[0] != "west" {
		t.Errorf("third access: %v", got)
	}
	// After many half-lives the site has to earn the replica again.
	now = 1e4
	if got := pol.OnAccess("d", 1, "east", "west", nil); got != nil {
		t.Errorf("decayed popularity still replicates: %v", got)
	}
	// A nil tracker is inert, not a panic.
	if got := (PopularityDriven{}).OnAccess("d", 1, "east", "west", nil); got != nil {
		t.Errorf("nil tracker: %v", got)
	}
}

// TestReplicationStorageAccounting checks the accounted replicate path:
// replicas reserve bytes at their destination, a full destination skips
// creation without economy eviction, and reclaim returns exactly what
// was reserved.
func TestReplicationStorageAccounting(t *testing.T) {
	w := buildWorld(t, map[string]string{ProfileHomeSites: "west"})
	w.p.Replication = CacheAtClient{}
	lc := w.p.newAssignCache()
	w.p.noteAccess("raw", "west", 8e6, lc)
	west, _ := w.cl.Grid.Site("west")
	if west.Storage.Used() != 8e6 {
		t.Fatalf("replica bytes not reserved: used=%d", west.Storage.Used())
	}
	if len(w.cat.ReplicasOf("raw")) != 2 {
		t.Fatalf("replica not created")
	}
	// Reclaim the cached copy: the reservation comes back, the primary
	// at east is untouched.
	evicted, err := w.p.Reclaim("west", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted: %+v", evicted)
	}
	if west.Storage.Used() != 0 {
		t.Errorf("reservation leaked after eviction: %d", west.Storage.Used())
	}

	// A destination too small for the dataset skips the replica (no
	// economy eviction configured).
	tiny := buildWorld(t, map[string]string{ProfileHomeSites: "west"})
	g := tiny.cl.Grid
	if _, err := g.AddSite("small", 100); err != nil {
		t.Fatal(err)
	}
	if err := g.AddHosts("small", "small", 1, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("east", "small", 1e6, 0.1, 4); err != nil {
		t.Fatal(err)
	}
	tiny.p.Replication = CacheAtClient{}
	tiny.p.noteAccess("raw", "small", 8e6, tiny.p.newAssignCache())
	if n := len(tiny.cat.ReplicasOf("raw")); n != 1 {
		t.Errorf("replica created past storage capacity: %d copies", n)
	}
}

// TestEconomyEvictionMakesRoom checks reclaim-on-full: with
// EconomyEviction on, the lowest-valued (popularity × refetch-cost)
// replica is evicted to admit a hotter one.
func TestEconomyEvictionMakesRoom(t *testing.T) {
	w := buildWorld(t, nil)
	g := w.cl.Grid
	// A cache site that fits exactly one 8 MB replica.
	if _, err := g.AddSite("edge", 10e6); err != nil {
		t.Fatal(err)
	}
	if err := g.AddHosts("edge", "edge", 1, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"east", "west"} {
		if err := g.Connect(s, "edge", 1e6, 0.1, 4); err != nil {
			t.Fatal(err)
		}
	}
	// Second dataset, primary at east.
	if err := w.cat.AddDataset(schema.Dataset{Name: "cold", Size: 8e6}); err != nil {
		t.Fatal(err)
	}
	if err := w.cat.AddReplica(schema.Replica{ID: "r-cold", Dataset: "cold", Site: "east", PFN: "/cold", Size: 8e6}); err != nil {
		t.Fatal(err)
	}

	now := 0.0
	pop := replica.NewPopularity(1000)
	w.p.Pop = pop
	w.p.SimNow = func() float64 { return now }
	w.p.EconomyEviction = true
	w.p.Replication = PopularityDriven{Pop: pop, Now: w.p.SimNow, Threshold: 1}

	// "cold" gets cached at edge first.
	w.p.noteAccess("cold", "edge", 8e6, w.p.newAssignCache())
	edge, _ := g.Site("edge")
	if edge.Storage.Used() != 8e6 {
		t.Fatalf("cold not cached: used=%d", edge.Storage.Used())
	}
	// Time passes; cold's popularity decays while raw becomes hot.
	now = 5000
	w.p.noteAccess("raw", "edge", 8e6, w.p.newAssignCache())
	now = 5001
	w.p.noteAccess("raw", "edge", 8e6, w.p.newAssignCache())

	sitesOf := func(ds string) map[string]bool {
		out := map[string]bool{}
		for _, r := range w.cat.ReplicasOf(ds) {
			out[r.Site] = true
		}
		return out
	}
	if !sitesOf("raw")["edge"] {
		t.Error("hot dataset did not displace cold one")
	}
	if sitesOf("cold")["edge"] {
		t.Error("cold replica survived economy eviction")
	}
	if edge.Storage.Used() != 8e6 {
		t.Errorf("storage accounting after swap: used=%d", edge.Storage.Used())
	}
}

// TestLinkClassWeightSteersPlacement checks hierarchy-aware scoring:
// weighting transatlantic staging pushes placement to a same-region
// site even when the transatlantic link is nominally faster.
func TestLinkClassWeightSteersPlacement(t *testing.T) {
	w := buildWorld(t, nil)
	g := w.cl.Grid
	// A third site across the ocean with a faster link to east than
	// west's, and faster hosts.
	if _, err := g.AddSite("far", 1e15); err != nil {
		t.Fatal(err)
	}
	if err := g.AddHosts("far", "far", 4, 4.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectClass("east", "far", grid.ClassTransatlantic, 2e6, 0.1, 4); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectClass("east", "west", grid.ClassRegional, 1e6, 0.1, 4); err != nil {
		t.Fatal(err)
	}

	assign := func() string {
		n := node(t, w)
		pl, err := w.p.Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		return pl.Site
	}
	if site := assign(); site != "far" {
		t.Fatalf("unweighted placement: %s (want far: more cores, faster link)", site)
	}
	// Penalize transatlantic traffic 10x: the regional site wins.
	w.p.LinkClassWeight = map[string]float64{grid.ClassTransatlantic: 10}
	if site := assign(); site == "far" {
		t.Error("weighted placement still crosses the ocean")
	}
}
