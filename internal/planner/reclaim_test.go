package planner

import (
	"testing"

	catalogpkg "chimera/internal/catalog"
	"chimera/internal/dag"
	estimatorpkg "chimera/internal/estimator"
	"chimera/internal/executor"
	gridpkg "chimera/internal/grid"
	"chimera/internal/schema"
)

// reclaimWorld: east+west; primary "raw" with copies at both sites;
// derived "cooked" with a copy at west; plus a pinned replica.
func reclaimWorld(t *testing.T) *world {
	t.Helper()
	w := buildWorld(t, nil) // raw at east (primary)
	// Second copy of raw at west (evictable: not the last copy).
	if err := w.cat.AddReplica(schema.Replica{ID: "r-raw-west", Dataset: "raw", Site: "west", PFN: "/c/raw", Size: 4e6}); err != nil {
		t.Fatal(err)
	}
	// Derived dataset with its only copy at west (evictable: derivable).
	if err := w.cat.AddReplica(schema.Replica{ID: "r-cooked-west", Dataset: "cooked", Site: "west", PFN: "/c/cooked", Size: 2e6}); err != nil {
		t.Fatal(err)
	}
	// Pinned replica at west.
	if err := w.cat.AddDataset(schema.Dataset{Name: "precious"}); err != nil {
		t.Fatal(err)
	}
	if err := w.cat.AddReplica(schema.Replica{ID: "r-pin", Dataset: "precious", Site: "west", PFN: "/p", Size: 9e6,
		Attrs: schema.Attributes{"pin": "true"}}); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestReclaimEvictsLowValueFirst(t *testing.T) {
	w := reclaimWorld(t)
	// Record accesses making raw@west valuable.
	w.p.noteAccess("raw", "west", 4e6, w.p.newAssignCache())
	w.p.noteAccess("raw", "west", 4e6, w.p.newAssignCache())

	evicted, err := w.p.Reclaim("west", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].ID != "r-cooked-west" {
		t.Fatalf("evicted: %+v", evicted)
	}
	// cooked is gone but re-derivable; raw copy survives.
	if w.cat.Materialized("cooked") {
		t.Error("cooked still materialized")
	}
	if len(w.cat.ReplicasOf("raw")) != 2 {
		t.Error("raw replica evicted despite higher value")
	}
}

func TestReclaimNeverDropsLastPrimaryOrPinned(t *testing.T) {
	w := reclaimWorld(t)
	// Ask for far more than is evictable.
	evicted, err := w.p.Reclaim("west", 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range evicted {
		if r.ID == "r-pin" {
			t.Error("pinned replica evicted")
		}
	}
	// raw's east copy (last remaining) must survive even under pressure.
	evicted2, err := w.p.Reclaim("east", 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted2) != 0 {
		t.Errorf("last primary copy evicted: %+v", evicted2)
	}
	if !w.cat.Materialized("raw") {
		t.Error("raw lost entirely")
	}
}

func TestReclaimedDataRederivable(t *testing.T) {
	w := reclaimWorld(t)
	// Evict everything evictable at west, including cooked's only copy.
	if _, err := w.p.Reclaim("west", 1<<40); err != nil {
		t.Fatal(err)
	}
	// cooked evicted; the recipe still materializes it.
	plan, err := w.cat.MaterializationPlan("cooked", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 {
		t.Fatalf("plan: %d", len(plan))
	}
}

func TestPendingLoadAblation(t *testing.T) {
	// With pending-load tracking disabled, a burst of assignments all
	// sees empty queues and lands on the data's site.
	build := func(disable bool) map[string]int {
		w := buildWorld(t, nil)
		w.p.DisablePendingLoad = disable
		counts := map[string]int{}
		for i := 0; i < 8; i++ {
			dv, err := w.cat.AddDerivation(schema.Derivation{TR: "t", Params: map[string]schema.Actual{
				"o": schema.DatasetActual("output", "out"+itoa(i)),
				"i": schema.DatasetActual("input", "raw"),
			}})
			if err != nil {
				t.Fatal(err)
			}
			g, err := dag.Build([]schema.Derivation{dv}, w.cat.Resolver())
			if err != nil {
				t.Fatal(err)
			}
			n, _ := g.Node(dv.ID)
			pl, err := w.p.Assign(n)
			if err != nil {
				t.Fatal(err)
			}
			counts[pl.Site]++
		}
		return counts
	}
	withTracking := build(false)
	if withTracking["west"] == 0 {
		t.Errorf("tracking enabled: burst did not spread: %v", withTracking)
	}
	without := build(true)
	if without["east"] != 8 {
		t.Errorf("tracking disabled: burst should pile on east: %v", without)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestOnEventDecrements(t *testing.T) {
	w := buildWorld(t, nil)
	n := node(t, w)
	if _, err := w.p.Assign(n); err != nil {
		t.Fatal(err)
	}
	if w.p.pendingLoad("east") == 0 {
		t.Fatal("assignment not tracked")
	}
	done := executor.Event{Kind: "done", Result: executor.Result{Site: "east"}}
	w.p.OnEvent(done)
	if w.p.pendingLoad("east") != 0 {
		t.Error("done event did not decrement")
	}
	// Double-decrement is clamped.
	w.p.OnEvent(done)
	if w.p.pendingLoad("east") != 0 {
		t.Error("negative pending")
	}
	// Dispatch events are ignored.
	w.p.OnEvent(executor.Event{Kind: "dispatch"})
}

func TestPlannerErrorOnEmptyGrid(t *testing.T) {
	w := buildWorld(t, nil)
	// Catalog references a dataset with replica at a host-less site.
	if _, err := w.p.Reclaim("ghost-site", 10); err != nil {
		t.Fatal(err) // reclaiming nothing is fine
	}
}

func TestFastSitePreferred(t *testing.T) {
	// Two empty sites; data at neither; west's hosts are 4x faster.
	// The expected saving (75s of a 100s job) dwarfs the transfer.
	g := gridpkg.NewGrid()
	for _, s := range []string{"east", "west"} {
		if _, err := g.AddSite(s, 1e15); err != nil {
			t.Fatal(err)
		}
	}
	g.AddHosts("east", "east", 2, 1.0, 1)
	g.AddHosts("west", "west", 2, 4.0, 1)
	g.Connect("east", "west", 100e6, 0.05, 4) // fast link
	cl := gridpkg.NewCluster(g, gridpkg.NewSim(3))

	cat := catalogpkg.New(nil)
	tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/bin/t",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		}}
	if err := cat.AddTransformation(tr); err != nil {
		t.Fatal(err)
	}
	cat.AddDataset(schema.Dataset{Name: "raw", Size: 1e6})
	cat.AddReplica(schema.Replica{ID: "r", Dataset: "raw", Site: "east", PFN: "/r", Size: 1e6})
	dv, err := cat.AddDerivation(schema.Derivation{TR: "t", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", "out"),
		"i": schema.DatasetActual("input", "raw"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	est := estimatorpkg.New(100) // 100s reference job
	p := New(cat, est, cl)
	graph, err := dag.Build([]schema.Derivation{dv}, cat.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	n, _ := graph.Node(dv.ID)
	pl, err := p.Assign(n)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Site != "west" {
		t.Errorf("fast site not preferred: %s", pl.Site)
	}
}
