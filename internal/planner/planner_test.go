package planner

import (
	"errors"
	"fmt"
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/estimator"
	"chimera/internal/executor"
	"chimera/internal/grid"
	"chimera/internal/schema"
)

// world builds two sites (east with data, west empty) with one host
// each, a slow link, a catalog with transformation t, dataset raw at
// east, and one derivation raw -> cooked.
type world struct {
	cat *catalog.Catalog
	est *estimator.Estimator
	cl  *grid.Cluster
	p   *Planner
	g   *dag.Graph
	dv  schema.Derivation
}

func buildWorld(t *testing.T, profile map[string]string) *world {
	t.Helper()
	g := grid.NewGrid()
	for _, s := range []string{"east", "west"} {
		if _, err := g.AddSite(s, 1e15); err != nil {
			t.Fatal(err)
		}
		if err := g.AddHosts(s, s, 1, 1.0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect("east", "west", 1e6, 0.1, 4); err != nil { // 1 MB/s
		t.Fatal(err)
	}
	cl := grid.NewCluster(g, grid.NewSim(5))

	cat := catalog.New(nil)
	tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/bin/t",
		Profile: profile,
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		}}
	if err := cat.AddTransformation(tr); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddDataset(schema.Dataset{Name: "raw", Size: 8e6}); err != nil { // 8 MB
		t.Fatal(err)
	}
	if err := cat.AddReplica(schema.Replica{ID: "r-raw", Dataset: "raw", Site: "east", PFN: "/raw", Size: 8e6}); err != nil {
		t.Fatal(err)
	}
	dv, err := cat.AddDerivation(schema.Derivation{TR: "t", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", "cooked"),
		"i": schema.DatasetActual("input", "raw"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	graph, err := dag.Build([]schema.Derivation{dv}, cat.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	est := estimator.New(100) // default work 100s
	return &world{cat: cat, est: est, cl: cl, p: New(cat, est, cl), g: graph, dv: dv}
}

func node(t *testing.T, w *world) *dag.Node {
	t.Helper()
	n, ok := w.g.Node(w.dv.ID)
	if !ok {
		t.Fatal("node missing")
	}
	return n
}

func TestAutoPrefersDataLocality(t *testing.T) {
	w := buildWorld(t, nil)
	pl, err := w.p.Assign(node(t, w))
	if err != nil {
		t.Fatal(err)
	}
	// 8 MB over 1 MB/s link (4 streams → 250 KB/s) = 32s+; east avoids it.
	if pl.Site != "east" {
		t.Errorf("site: %s", pl.Site)
	}
	if len(pl.Transfers) != 0 {
		t.Errorf("transfers: %v", pl.Transfers)
	}
	if pl.Work != 100 {
		t.Errorf("work: %g", pl.Work)
	}
}

func TestAutoAvoidsCongestedSite(t *testing.T) {
	w := buildWorld(t, nil)
	// Pile 100 jobs on east's only host: queue delay dwarfs transfer.
	for i := 0; i < 100; i++ {
		w.cl.Submit("east-0", &grid.Job{ID: fmt.Sprintf("bg%d", i), Work: 1000})
	}
	pl, err := w.p.Assign(node(t, w))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Site != "west" {
		t.Errorf("site under congestion: %s", pl.Site)
	}
	if len(pl.Transfers) != 1 || pl.Transfers[0].FromSite != "east" || pl.Transfers[0].Bytes != 8e6 {
		t.Errorf("staging: %+v", pl.Transfers)
	}
}

func TestPinnedProcedureImmovable(t *testing.T) {
	w := buildWorld(t, map[string]string{ProfileHomeSites: "west"})
	pl, err := w.p.Assign(node(t, w))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Site != "west" {
		t.Errorf("pinned procedure ran at %s", pl.Site)
	}
	if len(pl.Transfers) != 1 {
		t.Errorf("pinned procedure should stage data: %+v", pl.Transfers)
	}
}

func TestInstallCostCrossover(t *testing.T) {
	// Procedure homed at west, movable for 5s. Small data: cheaper to
	// ship data to west. Huge data: cheaper to install at east.
	run := func(size int64) string {
		w := buildWorld(t, map[string]string{
			ProfileHomeSites:      "west",
			ProfileInstallSeconds: "5",
		})
		ds, _ := w.cat.Dataset("raw")
		ds.Size = size
		if err := w.cat.UpdateDataset(ds); err != nil {
			t.Fatal(err)
		}
		pl, err := w.p.Assign(node(t, w))
		if err != nil {
			t.Fatal(err)
		}
		return pl.Site
	}
	if got := run(100e3); got != "west" { // 100 KB: ~0.5s transfer < 5s install
		t.Errorf("small data ran at %s, want west", got)
	}
	if got := run(100e6); got != "east" { // 100 MB: ~400s transfer > 5s install
		t.Errorf("large data ran at %s, want east", got)
	}
}

func TestShippingModes(t *testing.T) {
	mk := func(mode Mode) string {
		w := buildWorld(t, map[string]string{
			ProfileHomeSites:      "west",
			ProfileInstallSeconds: "5",
		})
		w.p.Mode = mode
		pl, err := w.p.Assign(node(t, w))
		if err != nil {
			t.Fatal(err)
		}
		return pl.Site
	}
	if got := mk(ShipDataToProcedure); got != "west" {
		t.Errorf("ship-data: %s", got)
	}
	if got := mk(ShipProcedureToData); got != "east" {
		t.Errorf("ship-procedure: %s", got)
	}
	if Auto.String() != "auto" || ShipDataToProcedure.String() != "ship-data" || ShipProcedureToData.String() != "ship-procedure" {
		t.Error("mode names")
	}
}

func TestReplicationPolicies(t *testing.T) {
	acc := map[string]int{"west": 3, "east": 1}
	if got := (NoReplication{}).OnAccess("d", 1, "east", "west", acc); got != nil {
		t.Errorf("none: %v", got)
	}
	if got := (CacheAtClient{}).OnAccess("d", 1, "east", "west", acc); len(got) != 1 || got[0] != "west" {
		t.Errorf("cache: %v", got)
	}
	if got := (BestClient{Threshold: 3}).OnAccess("d", 1, "east", "west", acc); len(got) != 1 || got[0] != "west" {
		t.Errorf("best-client: %v", got)
	}
	if got := (BestClient{Threshold: 5}).OnAccess("d", 1, "east", "west", acc); got != nil {
		t.Errorf("best-client below threshold: %v", got)
	}
	if got := (Broadcast{Threshold: 4}).OnAccess("d", 1, "east", "west", acc); len(got) != 2 {
		t.Errorf("broadcast: %v", got)
	}
	if got := (Broadcast{Threshold: 10}).OnAccess("d", 1, "east", "west", acc); got != nil {
		t.Errorf("broadcast below threshold: %v", got)
	}
	combo := CacheAndBestClient{Threshold: 3}.OnAccess("d", 1, "east", "west", acc)
	if len(combo) != 2 {
		t.Errorf("combo: %v", combo)
	}
	if len(Policies(3)) != 6 {
		t.Error("policy sweep size")
	}
}

func TestCachingReducesRepeatTransfers(t *testing.T) {
	// Two consecutive jobs at west consuming raw (east): with caching,
	// the second stages nothing.
	for _, cached := range []bool{false, true} {
		w := buildWorld(t, map[string]string{ProfileHomeSites: "west"})
		if cached {
			w.p.Replication = CacheAtClient{}
		}
		n := node(t, w)
		pl1, err := w.p.Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(pl1.Transfers) != 1 {
			t.Fatalf("first access should transfer")
		}
		// Second derivation consuming raw.
		dv2, err := w.cat.AddDerivation(schema.Derivation{TR: "t", Params: map[string]schema.Actual{
			"o": schema.DatasetActual("output", "cooked2"),
			"i": schema.DatasetActual("input", "raw"),
		}})
		if err != nil {
			t.Fatal(err)
		}
		g2, err := dag.Build([]schema.Derivation{dv2}, w.cat.Resolver())
		if err != nil {
			t.Fatal(err)
		}
		n2, _ := g2.Node(dv2.ID)
		pl2, err := w.p.Assign(n2)
		if err != nil {
			t.Fatal(err)
		}
		wantXfers := 1
		if cached {
			wantXfers = 0
		}
		if len(pl2.Transfers) != wantXfers {
			t.Errorf("cached=%v: second access transfers=%d want %d", cached, len(pl2.Transfers), wantXfers)
		}
	}
}

func TestAccessCounting(t *testing.T) {
	w := buildWorld(t, map[string]string{ProfileHomeSites: "west"})
	if _, err := w.p.Assign(node(t, w)); err != nil {
		t.Fatal(err)
	}
	if got := w.p.AccessCount("raw"); got["west"] != 1 {
		t.Errorf("access count: %v", got)
	}
}

func TestPlanRequestDecisions(t *testing.T) {
	w := buildWorld(t, nil)

	// raw is materialized at east: reuse there, retrieve from west.
	plan, err := w.p.PlanRequest("raw", "east")
	if err != nil || plan.Decision != Reuse {
		t.Errorf("reuse: %+v %v", plan, err)
	}
	plan, err = w.p.PlanRequest("raw", "west")
	if err != nil || plan.Decision != Retrieve || plan.Source != "east" {
		t.Errorf("retrieve: %+v %v", plan, err)
	}
	if plan.EstimatedSeconds <= 0 {
		t.Error("retrieve estimate missing")
	}

	// cooked is virtual: derive.
	plan, err = w.p.PlanRequest("cooked", "east")
	if err != nil || plan.Decision != Derive {
		t.Fatalf("derive: %+v %v", plan, err)
	}
	if len(plan.Derivations) != 1 || plan.Graph == nil || plan.EstimatedSeconds < 100 {
		t.Errorf("derive plan: %+v", plan)
	}

	// Unknown dataset.
	if _, err := w.p.PlanRequest("ghost", "east"); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("unknown: %v", err)
	}

	// Underivable and unmaterialized.
	w.cat.AddDataset(schema.Dataset{Name: "orphan"})
	if _, err := w.p.PlanRequest("orphan", "east"); err == nil {
		t.Error("orphan satisfiable")
	}

	// Retrieval beats rederiving when both possible: materialize cooked
	// at west, then request at east.
	if err := w.cat.AddReplica(schema.Replica{ID: "r-c", Dataset: "cooked", Site: "west", PFN: "/c", Size: 1e3}); err != nil {
		t.Fatal(err)
	}
	plan, err = w.p.PlanRequest("cooked", "east")
	if err != nil || plan.Decision != Retrieve || plan.Source != "west" {
		t.Errorf("retrieve-vs-derive: %+v %v", plan, err)
	}
}

func TestEndToEndPlanAndExecute(t *testing.T) {
	w := buildWorld(t, nil)
	plan, err := w.p.PlanRequest("cooked", "east")
	if err != nil || plan.Decision != Derive {
		t.Fatal(err)
	}
	ex := &executor.Executor{Driver: executor.NewSimDriver(w.cl), Catalog: w.cat, Assign: w.p.Assign}
	rep, err := ex.Run(plan.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report: %+v", rep)
	}
	if !w.cat.Materialized("cooked") {
		t.Error("cooked not materialized after execution")
	}
	// A repeat request now reuses.
	plan2, err := w.p.PlanRequest("cooked", "east")
	if err != nil || plan2.Decision != Reuse {
		t.Errorf("repeat request: %+v %v", plan2, err)
	}
}

func TestNoFeasibleSite(t *testing.T) {
	w := buildWorld(t, map[string]string{ProfileHomeSites: "mars"})
	if _, err := w.p.Assign(node(t, w)); err == nil {
		t.Error("infeasible pin accepted")
	}
}

// Profile hints come from user-authored VDL; malformed values must
// degrade to "no hint", never silently truncate or crash. In
// particular "5x" must not parse as 5 (the old Sscanf behaviour).
func TestProfileHintParsing(t *testing.T) {
	tr := func(install string) schema.Transformation {
		return schema.Transformation{
			Name: "p", Kind: schema.Simple, Exec: "/bin/p",
			Profile: map[string]string{ProfileInstallSeconds: install},
		}
	}
	installCases := []struct {
		raw  string
		want float64
		ok   bool
	}{
		{"", 0, false},
		{"5", 5, true},
		{" 2.5 ", 2.5, true},
		{"1e2", 100, true},
		{"5x", 0, false},      // trailing garbage
		{"4.2.1", 0, false},   // not a number
		{"-3", 0, false},      // negative cost
		{"NaN", 0, false},
		{"+Inf", 0, false},
		{"seconds", 0, false},
	}
	for _, tc := range installCases {
		got, ok := installCost(tr(tc.raw))
		if got != tc.want || ok != tc.ok {
			t.Errorf("installCost(%q) = %g,%v; want %g,%v", tc.raw, got, ok, tc.want, tc.ok)
		}
	}

	trHome := func(raw string) schema.Transformation {
		return schema.Transformation{
			Name: "p", Kind: schema.Simple, Exec: "/bin/p",
			Profile: map[string]string{ProfileHomeSites: raw},
		}
	}
	homeCases := []struct {
		raw  string
		want []string
	}{
		{"", nil},
		{"east", []string{"east"}},
		{" east , west ", []string{"east", "west"}},
		{",,", nil},          // only separators: no pin, not empty-site pins
		{"east,,west,", []string{"east", "west"}},
	}
	for _, tc := range homeCases {
		got := homeSites(trHome(tc.raw))
		if len(got) != len(tc.want) {
			t.Errorf("homeSites(%q) = %v; want %v", tc.raw, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("homeSites(%q) = %v; want %v", tc.raw, got, tc.want)
				break
			}
		}
	}
}
