package planner

import (
	"fmt"
	"sort"

	"chimera/internal/schema"
)

// Storage reclamation (§2's planning duty: "reclamation of resources of
// lesser value"). Because every derived dataset remains virtually
// available through its recipe, evicting a replica loses capacity, not
// data — the catalog can always re-derive it.

// Evictable reports whether a replica may be reclaimed: cached and
// derived copies are fair game; the last replica of *primary* data is
// not (it has no recipe), and replicas pinned via attrs["pin"] are
// never touched.
func (p *Planner) evictable(r schema.Replica, copies int) bool {
	if r.Attrs["pin"] == "true" {
		return false
	}
	if copies > 1 {
		return true
	}
	// Last copy: only evictable if the dataset is derivable.
	rec, err := p.Cat.Dataset(r.Dataset)
	return err == nil && rec.CreatedBy != ""
}

// value scores a replica for retention: more recently/frequently
// accessed data is worth more. The score is the dataset's total
// recorded accesses, weighted toward the replica's own site.
func (p *Planner) value(r schema.Replica) float64 {
	counts := p.AccessCount(r.Dataset)
	total := 0
	for _, n := range counts {
		total += n
	}
	return float64(total) + 2*float64(counts[r.Site])
}

// Reclaim frees at least the requested bytes at a site by removing the
// least valuable evictable replicas. It returns the evicted replicas
// (possibly fewer bytes than requested if nothing more is evictable).
func (p *Planner) Reclaim(site string, bytes int64) ([]schema.Replica, error) {
	type cand struct {
		rep   schema.Replica
		value float64
	}
	var cands []cand
	seen := make(map[string]int) // dataset -> replica count (all sites)
	var atSite []schema.Replica
	for _, ds := range p.Cat.Datasets() {
		reps := p.Cat.ReplicasOf(ds.Name)
		seen[ds.Name] = len(reps)
		for _, r := range reps {
			if r.Site == site {
				atSite = append(atSite, r)
			}
		}
	}
	for _, r := range atSite {
		if p.evictable(r, seen[r.Dataset]) {
			cands = append(cands, cand{rep: r, value: p.value(r)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].value != cands[j].value {
			return cands[i].value < cands[j].value
		}
		if cands[i].rep.Size != cands[j].rep.Size {
			return cands[i].rep.Size > cands[j].rep.Size // free big ones first
		}
		return cands[i].rep.ID < cands[j].rep.ID
	})

	var evicted []schema.Replica
	var freed int64
	for _, c := range cands {
		if freed >= bytes {
			break
		}
		if err := p.Cat.RemoveReplica(c.rep.ID); err != nil {
			return evicted, fmt.Errorf("planner: reclaim: %w", err)
		}
		if s, ok := p.Cluster.Grid.Site(site); ok && s.Storage != nil {
			s.Storage.Release(c.rep.Size)
		}
		evicted = append(evicted, c.rep)
		freed += c.rep.Size
	}
	return evicted, nil
}
