package planner

import (
	"fmt"
	"math"
	"sort"

	"chimera/internal/schema"
)

// Storage reclamation (§2's planning duty: "reclamation of resources of
// lesser value"). Because every derived dataset remains virtually
// available through its recipe, evicting a replica loses capacity, not
// data — the catalog can always re-derive it.

// Evictable reports whether a replica may be reclaimed: cached and
// derived copies are fair game; the last replica of *primary* data is
// not (it has no recipe), and replicas pinned via attrs["pin"] are
// never touched.
func (p *Planner) evictable(r schema.Replica, copies int) bool {
	if r.Attrs["pin"] == "true" {
		return false
	}
	if copies > 1 {
		return true
	}
	// Last copy: only evictable if the dataset is derivable.
	rec, err := p.Cat.Dataset(r.Dataset)
	return err == nil && rec.CreatedBy != ""
}

// value scores a replica for retention: more recently/frequently
// accessed data is worth more. The score is the dataset's total
// recorded accesses, weighted toward the replica's own site.
func (p *Planner) value(r schema.Replica) float64 {
	counts := p.AccessCount(r.Dataset)
	total := 0
	for _, n := range counts {
		total += n
	}
	return float64(total) + 2*float64(counts[r.Site])
}

// economicValue prices a replica as popularity × transfer-cost-saved:
// the decayed local access rate times the seconds the grid would spend
// getting the bytes back if this copy vanished (cheapest refetch from
// another replica, or the re-derivation work for the last copy of a
// derived dataset). Used instead of value when EconomyEviction is on
// with a popularity tracker present.
func (p *Planner) economicValue(r schema.Replica) float64 {
	now := 0.0
	if p.SimNow != nil {
		now = p.SimNow()
	}
	// Count both local heat and a slice of grid-wide heat, so a replica
	// hot elsewhere (a refetch source for others) is not free to drop.
	pop := p.Pop.Score(r.Dataset, r.Site, now) + 0.25*p.Pop.Total(r.Dataset, now)
	return pop * p.refetchCost(r)
}

// refetchCost is the predicted seconds to restore the replica's bytes
// at its site after eviction.
func (p *Planner) refetchCost(r schema.Replica) float64 {
	size := r.Size
	if size <= 0 {
		size = p.sizeOf(r.Dataset)
	}
	best := math.Inf(1)
	for _, s := range p.replicaSites(r.Dataset) {
		if s == r.Site {
			continue
		}
		if t, err := p.transferCost(s, r.Site, size); err == nil && t < best {
			best = t
		}
	}
	if !math.IsInf(best, 1) {
		return best
	}
	// Last copy of a derived dataset: restoring it means re-running the
	// recipe.
	if rec, err := p.Cat.Dataset(r.Dataset); err == nil && rec.CreatedBy != "" && p.Est != nil {
		if dv, err := p.Cat.Derivation(rec.CreatedBy); err == nil {
			if w, ok := p.Est.Work(dv.TR); ok && w > 0 {
				return w
			}
		}
	}
	return float64(size) / p.Cluster.Grid.LocalBandwidth
}

// Reclaim frees at least the requested bytes at a site by removing the
// least valuable evictable replicas. It returns the evicted replicas
// (possibly fewer bytes than requested if nothing more is evictable).
func (p *Planner) Reclaim(site string, bytes int64) ([]schema.Replica, error) {
	type cand struct {
		rep   schema.Replica
		value float64
	}
	var cands []cand
	seen := make(map[string]int) // dataset -> replica count (all sites)
	var atSite []schema.Replica
	for _, ds := range p.Cat.Datasets() {
		reps := p.Cat.ReplicasOf(ds.Name)
		seen[ds.Name] = len(reps)
		for _, r := range reps {
			if r.Site == site {
				atSite = append(atSite, r)
			}
		}
	}
	economy := p.EconomyEviction && p.Pop != nil
	for _, r := range atSite {
		if p.evictable(r, seen[r.Dataset]) {
			v := 0.0
			if economy {
				v = p.economicValue(r)
			} else {
				v = p.value(r)
			}
			cands = append(cands, cand{rep: r, value: v})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].value != cands[j].value {
			return cands[i].value < cands[j].value
		}
		if cands[i].rep.Size != cands[j].rep.Size {
			return cands[i].rep.Size > cands[j].rep.Size // free big ones first
		}
		return cands[i].rep.ID < cands[j].rep.ID
	})

	var evicted []schema.Replica
	var freed int64
	for _, c := range cands {
		if freed >= bytes {
			break
		}
		if err := p.Cat.RemoveReplica(c.rep.ID); err != nil {
			return evicted, fmt.Errorf("planner: reclaim: %w", err)
		}
		// Release exactly what this planner reserved for the replica;
		// replicas placed by other actors (primaries, executor records)
		// were never allocated here, and releasing them would underflow
		// the element's accounting.
		p.mu.Lock()
		alloc, tracked := p.allocated[c.rep.ID]
		delete(p.allocated, c.rep.ID)
		p.mu.Unlock()
		if tracked {
			if s, ok := p.Cluster.Grid.Site(site); ok && s.Storage != nil {
				if err := s.Storage.Release(alloc); err != nil {
					return evicted, fmt.Errorf("planner: reclaim: %w", err)
				}
			}
		}
		if p.Pop != nil {
			p.Pop.Forget(c.rep.Dataset, site)
		}
		metricGridEvictions.Inc()
		evicted = append(evicted, c.rep)
		freed += c.rep.Size
	}
	return evicted, nil
}
