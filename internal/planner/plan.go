package planner

import (
	"fmt"
	"math"

	"chimera/internal/dag"
	"chimera/internal/schema"
)

// Decision is the reuse-vs-recompute outcome for one request.
type Decision int

const (
	// Reuse: the product exists at the requesting site; no work needed.
	Reuse Decision = iota
	// Retrieve: the product exists elsewhere; transfer it.
	Retrieve
	// Derive: the product must be (re)computed.
	Derive
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Reuse:
		return "reuse"
	case Retrieve:
		return "retrieve"
	default:
		return "derive"
	}
}

// Plan is the materialization plan for one requested dataset.
type Plan struct {
	Target   string
	Decision Decision
	// Source is the replica site chosen for Retrieve.
	Source string
	// Derivations lists, in dependency order, the work for Derive.
	Derivations []schema.Derivation
	// Graph is the workflow DAG for Derive (nil otherwise).
	Graph *dag.Graph
	// EstimatedSeconds predicts the cost of executing the plan at the
	// requested site (0 for Reuse).
	EstimatedSeconds float64
}

// PlanRequest decides how to satisfy a request for dataset target at
// site atSite, implementing the paper's "determine whether a requested
// computation has been performed previously, and whether it is cheaper
// to rerun it or to retrieve previously generated data".
func (p *Planner) PlanRequest(target, atSite string) (Plan, error) {
	plan := Plan{Target: target}
	if _, err := p.Cat.Dataset(target); err != nil {
		return Plan{}, err
	}

	// Cost of retrieving an existing replica, if any. One lookup cache
	// spans the whole request decision.
	lc := p.newAssignCache()
	retrieveCost := math.Inf(1)
	var source string
	if p.Cat.Materialized(target) {
		if containsStr(lc.replicaSites(target), atSite) {
			plan.Decision = Reuse
			return plan, nil
		}
		if s, secs, ok := p.bestSource(target, atSite, lc); ok {
			source, retrieveCost = s, secs
		}
	}

	// Cost of deriving.
	deriveCost := math.Inf(1)
	dvs, derr := p.Cat.MaterializationPlan(target, nil)
	if derr == nil && len(dvs) == 0 {
		// The target is already materialized somewhere; there is
		// nothing to derive, so retrieval is the only live option.
		derr = fmt.Errorf("planner: %q already materialized; nothing to derive", target)
	}
	var g *dag.Graph
	if derr == nil {
		var err error
		g, err = dag.Build(dvs, p.Cat.Resolver())
		if err != nil {
			return Plan{}, err
		}
		hosts := 0
		for _, s := range p.Cluster.Grid.Sites() {
			hosts += len(p.Cluster.Grid.HostNames(s))
		}
		est := p.Est.EstimateGraph(g, hosts, func(n *dag.Node) float64 {
			// External inputs may need staging; internal edges are
			// assumed co-located by the placement policy.
			secs := 0.0
			for _, in := range n.Inputs {
				if _, ok := g.Producer(in); ok {
					continue
				}
				if _, t, ok := p.bestSource(in, atSite, lc); ok {
					secs += t
				}
			}
			return secs
		})
		deriveCost = est.Makespan
	}

	switch {
	case math.IsInf(retrieveCost, 1) && math.IsInf(deriveCost, 1):
		if derr != nil {
			return Plan{}, fmt.Errorf("planner: cannot satisfy request for %q: %w", target, derr)
		}
		return Plan{}, fmt.Errorf("planner: cannot satisfy request for %q", target)
	case retrieveCost <= deriveCost:
		plan.Decision = Retrieve
		plan.Source = source
		plan.EstimatedSeconds = retrieveCost
	default:
		plan.Decision = Derive
		plan.Derivations = dvs
		plan.Graph = g
		plan.EstimatedSeconds = deriveCost
	}
	return plan, nil
}
