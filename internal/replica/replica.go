// Package replica implements a replica location service in the style
// the paper's Grid infrastructure assumes (Globus RLS): per-site local
// replica catalogs mapping logical dataset names to physical file
// names, and a soft-state replica location index mapping logical names
// to the sites that hold them. Index entries expire unless refreshed,
// so sites that crash or depart silently age out.
//
// This complements the catalog package's Replica objects: the catalog
// records replicas as provenance-bearing schema objects; this package
// is the lookup-optimized location fabric planners consult.
package replica

import (
	"fmt"
	"sort"
	"sync"
)

// LocalCatalog is one site's logical-to-physical mapping (LRC).
type LocalCatalog struct {
	// Site names the owning storage site.
	Site string

	mu sync.RWMutex
	m  map[string][]string // lfn -> pfns
}

// NewLocalCatalog returns an empty LRC for a site.
func NewLocalCatalog(site string) *LocalCatalog {
	return &LocalCatalog{Site: site, m: make(map[string][]string)}
}

// Add registers a physical copy of a logical name. Duplicate pfns are
// ignored.
func (l *LocalCatalog) Add(lfn, pfn string) error {
	if lfn == "" || pfn == "" {
		return fmt.Errorf("replica: empty lfn or pfn")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range l.m[lfn] {
		if p == pfn {
			return nil
		}
	}
	l.m[lfn] = append(l.m[lfn], pfn)
	return nil
}

// Remove drops one physical copy; removing the last copy forgets the
// logical name.
func (l *LocalCatalog) Remove(lfn, pfn string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	pfns := l.m[lfn]
	for i, p := range pfns {
		if p == pfn {
			pfns = append(pfns[:i:i], pfns[i+1:]...)
			break
		}
	}
	if len(pfns) == 0 {
		delete(l.m, lfn)
	} else {
		l.m[lfn] = pfns
	}
}

// Lookup returns the physical names of a logical name at this site.
func (l *LocalCatalog) Lookup(lfn string) []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.m[lfn]...)
}

// Has reports whether the site holds the logical name.
func (l *LocalCatalog) Has(lfn string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.m[lfn]) > 0
}

// LFNs lists the logical names held, sorted.
func (l *LocalCatalog) LFNs() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.m))
	for lfn := range l.m {
		out = append(out, lfn)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of logical names held.
func (l *LocalCatalog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.m)
}

// Index is the replica location index (RLI): logical name to holding
// sites with soft-state expiry. Time is caller-supplied (simulated or
// wall seconds), keeping the index deterministic under test.
type Index struct {
	// TTL is the seconds an update stays valid; <= 0 means never
	// expires.
	TTL float64

	mu sync.RWMutex
	m  map[string]map[string]float64 // lfn -> site -> expiry time
}

// NewIndex returns an index with the given TTL.
func NewIndex(ttl float64) *Index {
	return &Index{TTL: ttl, m: make(map[string]map[string]float64)}
}

// Update ingests a full-state report from a site's LRC at time now:
// the site holds exactly these lfns. Previous entries for the site are
// replaced (full-state semantics, as in RLS soft-state updates).
func (ix *Index) Update(site string, lfns []string, now float64) {
	expiry := now + ix.TTL
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// Drop the site's previous claims.
	for lfn, sites := range ix.m {
		if _, ok := sites[site]; ok {
			delete(sites, site)
			if len(sites) == 0 {
				delete(ix.m, lfn)
			}
		}
	}
	for _, lfn := range lfns {
		sites := ix.m[lfn]
		if sites == nil {
			sites = make(map[string]float64)
			ix.m[lfn] = sites
		}
		sites[site] = expiry
	}
}

// Sites returns the sites believed to hold lfn at time now, sorted.
func (ix *Index) Sites(lfn string, now float64) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []string
	for site, expiry := range ix.m[lfn] {
		if ix.TTL <= 0 || expiry > now {
			out = append(out, site)
		}
	}
	sort.Strings(out)
	return out
}

// Expire removes entries older than now; callers may run it
// periodically to bound memory.
func (ix *Index) Expire(now float64) int {
	if ix.TTL <= 0 {
		return 0
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	removed := 0
	for lfn, sites := range ix.m {
		for site, expiry := range sites {
			if expiry <= now {
				delete(sites, site)
				removed++
			}
		}
		if len(sites) == 0 {
			delete(ix.m, lfn)
		}
	}
	return removed
}

// Len returns the number of logical names currently indexed (including
// possibly expired entries not yet swept).
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.m)
}

// Service couples LRCs with an index for convenience: registration
// writes through to the local catalog, and Refresh pushes full-state
// updates for all registered sites.
type Service struct {
	Index *Index

	mu   sync.RWMutex
	lrcs map[string]*LocalCatalog
}

// NewService returns a service with the given index TTL.
func NewService(ttl float64) *Service {
	return &Service{Index: NewIndex(ttl), lrcs: make(map[string]*LocalCatalog)}
}

// Site returns (creating if needed) the LRC for a site.
func (s *Service) Site(site string) *LocalCatalog {
	s.mu.Lock()
	defer s.mu.Unlock()
	lrc, ok := s.lrcs[site]
	if !ok {
		lrc = NewLocalCatalog(site)
		s.lrcs[site] = lrc
	}
	return lrc
}

// Register adds a physical copy and immediately reflects it in the
// index (valid until the next full-state refresh window closes).
func (s *Service) Register(site, lfn, pfn string, now float64) error {
	lrc := s.Site(site)
	if err := lrc.Add(lfn, pfn); err != nil {
		return err
	}
	s.Index.Update(site, lrc.LFNs(), now)
	return nil
}

// Refresh pushes full-state updates from every LRC at time now.
func (s *Service) Refresh(now float64) {
	s.mu.RLock()
	sites := make([]*LocalCatalog, 0, len(s.lrcs))
	for _, lrc := range s.lrcs {
		sites = append(sites, lrc)
	}
	s.mu.RUnlock()
	for _, lrc := range sites {
		s.Index.Update(lrc.Site, lrc.LFNs(), now)
	}
}

// Locate returns the sites holding lfn according to the index.
func (s *Service) Locate(lfn string, now float64) []string {
	return s.Index.Sites(lfn, now)
}
