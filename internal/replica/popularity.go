package replica

import (
	"math"
	"sort"
	"sync"
)

// Popularity tracks exponentially decayed access popularity per
// (dataset, site): the signal behind dynamic replication (refs [18,19];
// the Venugopal taxonomy's popularity-based strategies). Each access
// bumps a score that halves every HalfLife seconds of simulated (or
// wall) time, so a dataset hammered last week scores below one touched
// this morning — which is what lets replica placement and eviction
// react to shifting community interest instead of lifetime totals.
type Popularity struct {
	// HalfLife is the decay half-life in the caller's time unit.
	// Zero or negative disables decay (scores are plain access counts).
	HalfLife float64

	mu     sync.Mutex
	scores map[string]map[string]*popEntry // dataset -> site -> entry
}

type popEntry struct {
	score float64
	last  float64 // time of last bump/observation
}

// NewPopularity returns a tracker with the given half-life.
func NewPopularity(halfLife float64) *Popularity {
	return &Popularity{HalfLife: halfLife, scores: make(map[string]map[string]*popEntry)}
}

// decayed brings an entry's score forward to time now.
func (p *Popularity) decayed(e *popEntry, now float64) float64 {
	if p.HalfLife <= 0 || now <= e.last || e.score == 0 {
		return e.score
	}
	return e.score * math.Exp2(-(now-e.last)/p.HalfLife)
}

// Bump records one access of ds by site at time now and returns the
// updated decayed score.
func (p *Popularity) Bump(ds, site string, now float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.scores[ds]
	if m == nil {
		m = make(map[string]*popEntry)
		p.scores[ds] = m
	}
	e := m[site]
	if e == nil {
		e = &popEntry{}
		m[site] = e
	}
	e.score = p.decayed(e, now) + 1
	if now > e.last {
		e.last = now
	}
	return e.score
}

// Score reports the decayed popularity of ds at site as of now.
func (p *Popularity) Score(ds, site string, now float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.scores[ds]
	if m == nil || m[site] == nil {
		return 0
	}
	return p.decayed(m[site], now)
}

// Total reports the decayed popularity of ds summed over all sites.
func (p *Popularity) Total(ds string, now float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0.0
	for _, e := range p.scores[ds] {
		total += p.decayed(e, now)
	}
	return total
}

// Hottest returns the site with the highest decayed score for ds (ties
// broken by site name for determinism), or "" when ds was never
// accessed.
func (p *Popularity) Hottest(ds string, now float64) (string, float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sites := make([]string, 0, len(p.scores[ds]))
	for s := range p.scores[ds] {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	best, bestScore := "", 0.0
	for _, s := range sites {
		if sc := p.decayed(p.scores[ds][s], now); sc > bestScore {
			best, bestScore = s, sc
		}
	}
	return best, bestScore
}

// Forget drops the (ds, site) entry, e.g. after the replica there is
// evicted, so stale popularity does not immediately re-create it.
func (p *Popularity) Forget(ds, site string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m := p.scores[ds]; m != nil {
		delete(m, site)
		if len(m) == 0 {
			delete(p.scores, ds)
		}
	}
}
