package replica

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestLocalCatalogBasics(t *testing.T) {
	l := NewLocalCatalog("anl")
	if err := l.Add("", "/p"); err == nil {
		t.Error("empty lfn accepted")
	}
	if err := l.Add("d1", ""); err == nil {
		t.Error("empty pfn accepted")
	}
	if err := l.Add("d1", "/store/d1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Add("d1", "/store/d1"); err != nil {
		t.Fatal("duplicate add should be a no-op")
	}
	l.Add("d1", "/tape/d1")
	l.Add("d2", "/store/d2")
	if got := l.Lookup("d1"); len(got) != 2 {
		t.Errorf("lookup: %v", got)
	}
	if !l.Has("d1") || l.Has("ghost") {
		t.Error("has")
	}
	if got := l.LFNs(); !reflect.DeepEqual(got, []string{"d1", "d2"}) {
		t.Errorf("lfns: %v", got)
	}
	if l.Len() != 2 {
		t.Errorf("len: %d", l.Len())
	}
	l.Remove("d1", "/store/d1")
	if got := l.Lookup("d1"); len(got) != 1 || got[0] != "/tape/d1" {
		t.Errorf("after remove: %v", got)
	}
	l.Remove("d1", "/tape/d1")
	if l.Has("d1") || l.Len() != 1 {
		t.Error("last copy removal should forget the lfn")
	}
	l.Remove("ghost", "/x") // no-op
}

func TestIndexSoftState(t *testing.T) {
	ix := NewIndex(10)
	ix.Update("anl", []string{"d1", "d2"}, 0)
	ix.Update("fnal", []string{"d1"}, 5)

	if got := ix.Sites("d1", 6); !reflect.DeepEqual(got, []string{"anl", "fnal"}) {
		t.Errorf("d1 at t6: %v", got)
	}
	// anl's update expires at t=10.
	if got := ix.Sites("d1", 11); !reflect.DeepEqual(got, []string{"fnal"}) {
		t.Errorf("d1 at t11: %v", got)
	}
	if got := ix.Sites("d1", 16); len(got) != 0 {
		t.Errorf("d1 at t16: %v", got)
	}
	// Refresh renews.
	ix.Update("anl", []string{"d1"}, 12)
	if got := ix.Sites("d1", 20); !reflect.DeepEqual(got, []string{"anl"}) {
		t.Errorf("after refresh: %v", got)
	}
	// Full-state semantics: d2 no longer claimed by anl.
	if got := ix.Sites("d2", 13); len(got) != 0 {
		t.Errorf("d2 after full-state update: %v", got)
	}
}

func TestIndexNoTTL(t *testing.T) {
	ix := NewIndex(0)
	ix.Update("anl", []string{"d"}, 0)
	if got := ix.Sites("d", 1e12); len(got) != 1 {
		t.Errorf("no-ttl expiry: %v", got)
	}
	if ix.Expire(1e12) != 0 {
		t.Error("no-ttl expire removed entries")
	}
}

func TestExpireSweep(t *testing.T) {
	ix := NewIndex(10)
	ix.Update("a", []string{"d1", "d2"}, 0)
	ix.Update("b", []string{"d1"}, 8)
	if n := ix.Expire(11); n != 2 { // a's two entries
		t.Errorf("expired: %d", n)
	}
	if ix.Len() != 1 {
		t.Errorf("len after sweep: %d", ix.Len())
	}
	if got := ix.Sites("d1", 11); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("survivors: %v", got)
	}
}

func TestServiceFlow(t *testing.T) {
	s := NewService(100)
	if err := s.Register("anl", "d1", "/store/d1", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("fnal", "d1", "/dcache/d1", 0); err != nil {
		t.Fatal(err)
	}
	s.Register("anl", "d2", "/store/d2", 1)
	if got := s.Locate("d1", 50); !reflect.DeepEqual(got, []string{"anl", "fnal"}) {
		t.Errorf("locate: %v", got)
	}
	// Site removes a file locally; index is stale until refresh.
	s.Site("fnal").Remove("d1", "/dcache/d1")
	if got := s.Locate("d1", 50); len(got) != 2 {
		t.Errorf("stale view expected: %v", got)
	}
	s.Refresh(60)
	if got := s.Locate("d1", 61); !reflect.DeepEqual(got, []string{"anl"}) {
		t.Errorf("after refresh: %v", got)
	}
	if err := s.Register("anl", "", "/x", 0); err == nil {
		t.Error("bad register accepted")
	}
}

func TestConcurrentServiceUse(t *testing.T) {
	s := NewService(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := fmt.Sprintf("site%d", w%3)
			for i := 0; i < 100; i++ {
				lfn := fmt.Sprintf("d%d", i%17)
				s.Register(site, lfn, fmt.Sprintf("/s%d/%s/%d", w, lfn, i), float64(i))
				s.Locate(lfn, float64(i))
			}
		}(w)
	}
	wg.Wait()
	s.Refresh(101)
	if got := s.Locate("d0", 102); len(got) != 3 {
		t.Errorf("after concurrent load: %v", got)
	}
}
