package schema

import (
	"encoding/json"
	"reflect"
	"testing"
)

func allValidDescriptors() []Descriptor {
	return []Descriptor{
		FileDescriptor{Path: "/data/run1.raw"},
		FileSetDescriptor{Paths: []string{"/a", "/b"}},
		FileSliceDescriptor{Slices: []FileSlice{{Path: "/a", Offset: 10, Length: 100}}},
		ArchiveDescriptor{Path: "/x.tar", Format: "tar", Members: []string{"m1"}},
		IndexedFilesDescriptor{Index: "/idx", Data: []string{"/d1", "/d2"}},
		TableRowsDescriptor{Database: "sdss", Table: "fields", Keys: []string{"k1"}},
		TableRowsDescriptor{Database: "sdss", Table: "fields", KeyRange: [2]string{"a", "m"}},
		ObjectSetDescriptor{Store: "oodb", Roots: []string{"oid1"}},
		SpreadsheetDescriptor{Path: "/s.xls", Sheet: "S1", Regions: []string{"A1:C9"}},
		VirtualDescriptor{Of: "bigset", Expr: "rows 1-100"},
		OpaqueDescriptor{Schema: "cms-custom", Body: json.RawMessage(`{"x":1}`)},
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	for _, d := range allValidDescriptors() {
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: valid descriptor rejected: %v", d.Kind(), err)
		}
		data, err := MarshalDescriptor(d)
		if err != nil {
			t.Fatalf("%s: marshal: %v", d.Kind(), err)
		}
		got, err := UnmarshalDescriptor(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", d.Kind(), err)
		}
		if !reflect.DeepEqual(got, d) {
			t.Errorf("%s: round trip %#v -> %#v", d.Kind(), d, got)
		}
	}
}

func TestDescriptorNil(t *testing.T) {
	data, err := MarshalDescriptor(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDescriptor(data)
	if err != nil || got != nil {
		t.Errorf("nil round trip: %v, %v", got, err)
	}
}

func TestDescriptorUnknownKind(t *testing.T) {
	if _, err := UnmarshalDescriptor([]byte(`{"kind":"alien","body":{}}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := UnmarshalDescriptor([]byte(`{{`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDescriptorValidation(t *testing.T) {
	bad := []Descriptor{
		FileDescriptor{},
		FileSetDescriptor{},
		FileSetDescriptor{Paths: []string{""}},
		FileSliceDescriptor{},
		FileSliceDescriptor{Slices: []FileSlice{{Path: "/a", Offset: -1, Length: 5}}},
		FileSliceDescriptor{Slices: []FileSlice{{Path: "/a", Offset: 0, Length: 0}}},
		ArchiveDescriptor{Path: "/x"},
		ArchiveDescriptor{Format: "tar"},
		IndexedFilesDescriptor{Index: "/i"},
		TableRowsDescriptor{Database: "d"},
		TableRowsDescriptor{Database: "d", Table: "t"},
		ObjectSetDescriptor{Store: "s"},
		SpreadsheetDescriptor{Path: "/s"},
		VirtualDescriptor{},
		OpaqueDescriptor{},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d (%T): invalid descriptor accepted", i, d)
		}
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	for _, desc := range append(allValidDescriptors(), nil) {
		d := Dataset{
			Name:       "run1.exp15",
			Descriptor: desc,
			CreatedBy:  "dv-abc",
			Epoch:      2,
			Size:       1 << 30,
			Attrs:      Attributes{"owner": "annis"},
		}
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var got Dataset
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, d) {
			t.Errorf("dataset round trip with %v descriptor: %#v -> %#v", descKind(desc), d, got)
		}
	}
}

func descKind(d Descriptor) string {
	if d == nil {
		return "nil"
	}
	return d.Kind()
}
