// Package schema defines the five object classes of the Chimera virtual
// data schema — Dataset, Replica, Transformation, Derivation and
// Invocation — together with dataset descriptors, formal/actual
// argument structures, canonical derivation signatures, and
// transformation version-compatibility assertions.
//
// Objects are plain data: all behaviour that spans objects (provenance
// navigation, duplicate detection, discovery) lives in the catalog.
package schema

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Descriptor provides the information needed to access and manipulate a
// dataset's contents. The paper deliberately leaves descriptor schemas
// community-defined; we provide the spectrum it enumerates in §3.1 as a
// closed set of kinds, each self-validating, serialized behind a kind
// tag so catalogs can store them uniformly.
type Descriptor interface {
	// Kind returns the descriptor's registered kind tag.
	Kind() string
	// Validate reports whether the descriptor is internally consistent.
	Validate() error
}

// Descriptor kind tags.
const (
	KindFile        = "file"
	KindFileSet     = "fileset"
	KindFileSlice   = "fileslice"
	KindArchive     = "archive"
	KindIndexed     = "indexed"
	KindTableRows   = "tablerows"
	KindObjectSet   = "objectset"
	KindSpreadsheet = "spreadsheet"
	KindVirtual     = "virtual"
	KindOpaque      = "opaque"
)

// FileDescriptor locates a dataset stored in a single file.
type FileDescriptor struct {
	Path string `json:"path"`
}

func (d FileDescriptor) Kind() string { return KindFile }

func (d FileDescriptor) Validate() error {
	if d.Path == "" {
		return fmt.Errorf("schema: file descriptor with empty path")
	}
	return nil
}

// FileSetDescriptor locates a dataset that is a set of files viewed as
// one logical entity.
type FileSetDescriptor struct {
	Paths []string `json:"paths"`
}

func (d FileSetDescriptor) Kind() string { return KindFileSet }

func (d FileSetDescriptor) Validate() error {
	if len(d.Paths) == 0 {
		return fmt.Errorf("schema: fileset descriptor with no paths")
	}
	for _, p := range d.Paths {
		if p == "" {
			return fmt.Errorf("schema: fileset descriptor with empty path")
		}
	}
	return nil
}

// FileSlice is one (file, offset, length) extraction.
type FileSlice struct {
	Path   string `json:"path"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
}

// FileSliceDescriptor locates data extracted from regions of files.
type FileSliceDescriptor struct {
	Slices []FileSlice `json:"slices"`
}

func (d FileSliceDescriptor) Kind() string { return KindFileSlice }

func (d FileSliceDescriptor) Validate() error {
	if len(d.Slices) == 0 {
		return fmt.Errorf("schema: fileslice descriptor with no slices")
	}
	for _, s := range d.Slices {
		if s.Path == "" {
			return fmt.Errorf("schema: fileslice with empty path")
		}
		if s.Offset < 0 || s.Length <= 0 {
			return fmt.Errorf("schema: fileslice %s has invalid range [%d,+%d)", s.Path, s.Offset, s.Length)
		}
	}
	return nil
}

// ArchiveDescriptor locates a dataset packed inside an archive file.
type ArchiveDescriptor struct {
	Path    string   `json:"path"`
	Format  string   `json:"format"` // e.g. "tar", "zip"
	Members []string `json:"members,omitempty"`
}

func (d ArchiveDescriptor) Kind() string { return KindArchive }

func (d ArchiveDescriptor) Validate() error {
	if d.Path == "" {
		return fmt.Errorf("schema: archive descriptor with empty path")
	}
	if d.Format == "" {
		return fmt.Errorf("schema: archive descriptor with empty format")
	}
	return nil
}

// IndexedFilesDescriptor locates a dataset stored as an index file plus
// data files (the paper's gdbm example).
type IndexedFilesDescriptor struct {
	Index string   `json:"index"`
	Data  []string `json:"data"`
}

func (d IndexedFilesDescriptor) Kind() string { return KindIndexed }

func (d IndexedFilesDescriptor) Validate() error {
	if d.Index == "" {
		return fmt.Errorf("schema: indexed descriptor with empty index")
	}
	if len(d.Data) == 0 {
		return fmt.Errorf("schema: indexed descriptor with no data files")
	}
	return nil
}

// TableRowsDescriptor locates a dataset that is a set of rows selected
// by primary key from tables of a SQL database.
type TableRowsDescriptor struct {
	Database string    `json:"database"`
	Table    string    `json:"table"`
	Keys     []string  `json:"keys,omitempty"`
	KeyRange [2]string `json:"keyRange,omitempty"`
}

func (d TableRowsDescriptor) Kind() string { return KindTableRows }

func (d TableRowsDescriptor) Validate() error {
	if d.Database == "" || d.Table == "" {
		return fmt.Errorf("schema: tablerows descriptor needs database and table")
	}
	if len(d.Keys) == 0 && d.KeyRange == [2]string{} {
		return fmt.Errorf("schema: tablerows descriptor needs keys or a key range")
	}
	return nil
}

// ObjectSetDescriptor locates a closure of object references in a
// persistent object database.
type ObjectSetDescriptor struct {
	Store string   `json:"store"`
	Roots []string `json:"roots"`
}

func (d ObjectSetDescriptor) Kind() string { return KindObjectSet }

func (d ObjectSetDescriptor) Validate() error {
	if d.Store == "" {
		return fmt.Errorf("schema: objectset descriptor with empty store")
	}
	if len(d.Roots) == 0 {
		return fmt.Errorf("schema: objectset descriptor with no roots")
	}
	return nil
}

// SpreadsheetDescriptor locates a set of cell regions in a spreadsheet.
type SpreadsheetDescriptor struct {
	Path    string   `json:"path"`
	Sheet   string   `json:"sheet,omitempty"`
	Regions []string `json:"regions"` // e.g. "A1:C20"
}

func (d SpreadsheetDescriptor) Kind() string { return KindSpreadsheet }

func (d SpreadsheetDescriptor) Validate() error {
	if d.Path == "" {
		return fmt.Errorf("schema: spreadsheet descriptor with empty path")
	}
	if len(d.Regions) == 0 {
		return fmt.Errorf("schema: spreadsheet descriptor with no regions")
	}
	return nil
}

// VirtualDescriptor denotes a "virtual dataset" (§8): an overlaid
// subset of another dataset's physical storage, selected by a
// community-interpreted expression.
type VirtualDescriptor struct {
	Of   string `json:"of"`   // logical name of the backing dataset
	Expr string `json:"expr"` // selection expression
}

func (d VirtualDescriptor) Kind() string { return KindVirtual }

func (d VirtualDescriptor) Validate() error {
	if d.Of == "" {
		return fmt.Errorf("schema: virtual descriptor with empty backing dataset")
	}
	return nil
}

// OpaqueDescriptor carries a community-defined descriptor the core
// system does not interpret, preserving the paper's "a particular
// collaboration must define descriptor schemas" escape hatch.
type OpaqueDescriptor struct {
	Schema string          `json:"schema"`
	Body   json.RawMessage `json:"body,omitempty"`
}

func (d OpaqueDescriptor) Kind() string { return KindOpaque }

func (d OpaqueDescriptor) Validate() error {
	if d.Schema == "" {
		return fmt.Errorf("schema: opaque descriptor with empty schema name")
	}
	return nil
}

// descriptorEnvelope is the tagged wire form of a Descriptor.
type descriptorEnvelope struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// MarshalDescriptor serializes d behind its kind tag. A nil descriptor
// marshals as JSON null.
func MarshalDescriptor(d Descriptor) ([]byte, error) {
	if d == nil {
		return []byte("null"), nil
	}
	body, err := json.Marshal(d)
	if err != nil {
		return nil, err
	}
	return json.Marshal(descriptorEnvelope{Kind: d.Kind(), Body: body})
}

// UnmarshalDescriptor reverses MarshalDescriptor. JSON null yields a
// nil descriptor.
func UnmarshalDescriptor(data []byte) (Descriptor, error) {
	if strings.TrimSpace(string(data)) == "null" {
		return nil, nil
	}
	var env descriptorEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("schema: descriptor envelope: %w", err)
	}
	var d Descriptor
	switch env.Kind {
	case KindFile:
		d = &FileDescriptor{}
	case KindFileSet:
		d = &FileSetDescriptor{}
	case KindFileSlice:
		d = &FileSliceDescriptor{}
	case KindArchive:
		d = &ArchiveDescriptor{}
	case KindIndexed:
		d = &IndexedFilesDescriptor{}
	case KindTableRows:
		d = &TableRowsDescriptor{}
	case KindObjectSet:
		d = &ObjectSetDescriptor{}
	case KindSpreadsheet:
		d = &SpreadsheetDescriptor{}
	case KindVirtual:
		d = &VirtualDescriptor{}
	case KindOpaque:
		d = &OpaqueDescriptor{}
	default:
		return nil, fmt.Errorf("schema: unknown descriptor kind %q", env.Kind)
	}
	if err := json.Unmarshal(env.Body, d); err != nil {
		return nil, fmt.Errorf("schema: %s descriptor body: %w", env.Kind, err)
	}
	return deref(d), nil
}

// deref converts the pointer used for unmarshaling back to the value
// form used throughout the package.
func deref(d Descriptor) Descriptor {
	switch v := d.(type) {
	case *FileDescriptor:
		return *v
	case *FileSetDescriptor:
		return *v
	case *FileSliceDescriptor:
		return *v
	case *ArchiveDescriptor:
		return *v
	case *IndexedFilesDescriptor:
		return *v
	case *TableRowsDescriptor:
		return *v
	case *ObjectSetDescriptor:
		return *v
	case *SpreadsheetDescriptor:
		return *v
	case *VirtualDescriptor:
		return *v
	case *OpaqueDescriptor:
		return *v
	default:
		return d
	}
}
