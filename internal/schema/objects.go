package schema

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"chimera/internal/dtype"
)

// Attributes holds the arbitrary additional attributes the schema
// allows on every object, beyond the required ones.
type Attributes map[string]string

// Clone returns an independent copy of a (possibly nil) attribute map.
func (a Attributes) Clone() Attributes {
	if a == nil {
		return nil
	}
	c := make(Attributes, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Dataset is the unit of data managed within the virtual data model: a
// logical name bound to a dataset type and a descriptor. A Dataset may
// be purely virtual — defined only by the derivation that can produce
// it — in which case it has no replicas yet.
type Dataset struct {
	// Name is the logical dataset name (LFN), unique within a catalog.
	Name string `json:"name"`
	// Type places the dataset in the three-dimensional type space.
	Type dtype.Type `json:"type"`
	// Descriptor tells transformations how to access the contents; nil
	// for datasets that are purely virtual so far.
	Descriptor Descriptor `json:"-"`
	// CreatedBy names the derivation that produces this dataset, or ""
	// for primary (raw, non-derived) data.
	CreatedBy string `json:"createdBy,omitempty"`
	// Epoch counts in-place updates (§8 "update" future work): each
	// update of the dataset by a derivation increments it.
	Epoch int `json:"epoch,omitempty"`
	// Size is the (estimated or actual) size in bytes, 0 if unknown.
	Size int64 `json:"size,omitempty"`
	// Attrs carries user-defined metadata for discovery and annotation.
	Attrs Attributes `json:"attrs,omitempty"`
}

// datasetWire adds the tagged descriptor to the JSON form.
type datasetWire struct {
	Name       string          `json:"name"`
	Type       dtype.Type      `json:"type"`
	Descriptor json.RawMessage `json:"descriptor,omitempty"`
	CreatedBy  string          `json:"createdBy,omitempty"`
	Epoch      int             `json:"epoch,omitempty"`
	Size       int64           `json:"size,omitempty"`
	Attrs      Attributes      `json:"attrs,omitempty"`
}

// MarshalJSON implements json.Marshaler, encoding the descriptor behind
// its kind tag.
func (d Dataset) MarshalJSON() ([]byte, error) {
	desc, err := MarshalDescriptor(d.Descriptor)
	if err != nil {
		return nil, err
	}
	w := datasetWire{
		Name: d.Name, Type: d.Type, CreatedBy: d.CreatedBy,
		Epoch: d.Epoch, Size: d.Size, Attrs: d.Attrs,
	}
	if string(desc) != "null" {
		w.Descriptor = desc
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dataset) UnmarshalJSON(data []byte) error {
	var w datasetWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	var desc Descriptor
	if len(w.Descriptor) > 0 {
		var err error
		desc, err = UnmarshalDescriptor(w.Descriptor)
		if err != nil {
			return err
		}
	}
	*d = Dataset{
		Name: w.Name, Type: w.Type, Descriptor: desc,
		CreatedBy: w.CreatedBy, Epoch: w.Epoch, Size: w.Size, Attrs: w.Attrs,
	}
	return nil
}

// Validate checks the dataset's required attributes.
func (d Dataset) Validate() error {
	if err := checkLogicalName(d.Name); err != nil {
		return fmt.Errorf("schema: dataset: %w", err)
	}
	if d.Descriptor != nil {
		if err := d.Descriptor.Validate(); err != nil {
			return fmt.Errorf("schema: dataset %q: %w", d.Name, err)
		}
	}
	if d.Size < 0 {
		return fmt.Errorf("schema: dataset %q has negative size", d.Name)
	}
	if d.Epoch < 0 {
		return fmt.Errorf("schema: dataset %q has negative epoch", d.Name)
	}
	return nil
}

// IsVirtual reports whether the dataset currently exists only as a
// recipe (it was declared as derived data and has no descriptor yet).
func (d Dataset) IsVirtual() bool { return d.Descriptor == nil }

// Replica records one physical copy of a dataset at some location.
type Replica struct {
	// ID uniquely identifies the replica within a catalog.
	ID string `json:"id"`
	// Dataset is the logical name of the replicated dataset.
	Dataset string `json:"dataset"`
	// Site is the storage site holding the copy (a site name in the
	// grid substrate, or a vdp:// authority for remote catalogs).
	Site string `json:"site"`
	// PFN is the physical file name / URI at that site.
	PFN string `json:"pfn"`
	// Size in bytes of this physical copy; 0 if unknown.
	Size int64 `json:"size,omitempty"`
	// Epoch is the dataset epoch this replica materializes.
	Epoch int `json:"epoch,omitempty"`
	// ProducedBy is the invocation that wrote this replica, "" if it
	// was registered externally (e.g. primary data staged in).
	ProducedBy string `json:"producedBy,omitempty"`
	// Attrs carries user-defined metadata (checksums, pin state, ...).
	Attrs Attributes `json:"attrs,omitempty"`
}

// Validate checks the replica's required attributes.
func (r Replica) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("schema: replica with empty id")
	}
	if err := checkLogicalName(r.Dataset); err != nil {
		return fmt.Errorf("schema: replica %q: %w", r.ID, err)
	}
	if r.Site == "" {
		return fmt.Errorf("schema: replica %q has empty site", r.ID)
	}
	if r.PFN == "" {
		return fmt.Errorf("schema: replica %q has empty pfn", r.ID)
	}
	if r.Size < 0 {
		return fmt.Errorf("schema: replica %q has negative size", r.ID)
	}
	return nil
}

// Invocation records one execution of a derivation in a specific
// environment and context, closing the provenance chain down to
// physical detail.
type Invocation struct {
	// ID uniquely identifies the invocation within a catalog.
	ID string `json:"id"`
	// Derivation is the ID of the executed derivation.
	Derivation string `json:"derivation"`
	// Site and Host identify where the execution ran.
	Site string `json:"site,omitempty"`
	Host string `json:"host,omitempty"`
	// Start and End bracket the execution in (simulated or wall) time.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// ExitCode is the process exit status; 0 means success.
	ExitCode int `json:"exitCode"`
	// OS, Arch and Env capture the execution environment.
	OS   string            `json:"os,omitempty"`
	Arch string            `json:"arch,omitempty"`
	Env  map[string]string `json:"env,omitempty"`
	// BytesIn/BytesOut are the volumes staged in and out.
	BytesIn  int64 `json:"bytesIn,omitempty"`
	BytesOut int64 `json:"bytesOut,omitempty"`
	// UsedReplicas maps each input dataset to the replica actually
	// read; ProducedReplicas maps each output dataset to the replica
	// written. Both keep detailed provenance in a replicated world.
	UsedReplicas     map[string]string `json:"usedReplicas,omitempty"`
	ProducedReplicas map[string]string `json:"producedReplicas,omitempty"`
	// Attrs carries additional environment/context detail.
	Attrs Attributes `json:"attrs,omitempty"`
}

// Duration returns the invocation's elapsed time.
func (iv Invocation) Duration() time.Duration { return iv.End.Sub(iv.Start) }

// Succeeded reports whether the invocation completed with exit code 0.
func (iv Invocation) Succeeded() bool { return iv.ExitCode == 0 }

// Validate checks the invocation's required attributes.
func (iv Invocation) Validate() error {
	if iv.ID == "" {
		return fmt.Errorf("schema: invocation with empty id")
	}
	if iv.Derivation == "" {
		return fmt.Errorf("schema: invocation %q has empty derivation", iv.ID)
	}
	if iv.End.Before(iv.Start) {
		return fmt.Errorf("schema: invocation %q ends before it starts", iv.ID)
	}
	return nil
}

// checkLogicalName validates dataset and transformation names: they
// appear in VDL, vdp:// URLs and file paths, so keep them printable and
// free of structural characters.
func checkLogicalName(name string) error {
	if name == "" {
		return fmt.Errorf("empty logical name")
	}
	if strings.ContainsAny(name, " \t\n\"${}@") {
		return fmt.Errorf("logical name %q contains reserved characters", name)
	}
	return nil
}
