package schema

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"chimera/internal/dtype"
)

func TestDirectionRoundTrip(t *testing.T) {
	for _, d := range []Direction{In, Out, InOut, None} {
		got, err := ParseDirection(d.String())
		if err != nil || got != d {
			t.Errorf("direction %v round trip: %v, %v", d, got, err)
		}
	}
	if _, err := ParseDirection("sideways"); err == nil {
		t.Error("bad direction accepted")
	}
	if got, _ := ParseDirection("in"); got != In {
		t.Error("short form 'in' not accepted")
	}
	if !In.Reads() || In.Writes() || !Out.Writes() || Out.Reads() {
		t.Error("reads/writes predicates wrong")
	}
	if !InOut.Reads() || !InOut.Writes() || None.Reads() || None.Writes() {
		t.Error("inout/none predicates wrong")
	}
}

func TestTRRef(t *testing.T) {
	cases := []struct {
		ns, name, ver string
		want          string
	}{
		{"", "t1", "", "t1"},
		{"example1", "t1", "", "example1::t1"},
		{"", "t1", "2.0", "t1:2.0"},
		{"hep", "sim", "1.3", "hep::sim:1.3"},
	}
	for _, c := range cases {
		ref := FormatTRRef(c.ns, c.name, c.ver)
		if ref != c.want {
			t.Errorf("FormatTRRef(%q,%q,%q) = %q, want %q", c.ns, c.name, c.ver, ref, c.want)
		}
		ns, name, ver, err := ParseTRRef(ref)
		if err != nil || ns != c.ns || name != c.name || ver != c.ver {
			t.Errorf("ParseTRRef(%q) = %q,%q,%q,%v", ref, ns, name, ver, err)
		}
	}
	for _, bad := range []string{"", "ns::", "name:", "::"} {
		if _, _, _, err := ParseTRRef(bad); err == nil {
			t.Errorf("ParseTRRef(%q) accepted", bad)
		}
	}
}

// t1FromPaper builds the paper's Appendix A example transformation.
func t1FromPaper() Transformation {
	return Transformation{
		Name: "t1",
		Kind: Simple,
		Args: []FormalArg{
			{Name: "a2", Direction: Out},
			{Name: "a1", Direction: In},
			{Name: "env", Direction: None, Default: ptr(StringActual("100000"))},
			{Name: "pa", Direction: None, Default: ptr(StringActual("500"))},
		},
		Exec: "/usr/bin/app3",
		ArgTemplates: []ArgTemplate{
			{Name: "parg", Parts: []TemplatePart{{Literal: "-p "}, {Ref: "pa", RefDirection: "none"}}},
			{Name: "farg", Parts: []TemplatePart{{Literal: "-f "}, {Ref: "a1", RefDirection: "input"}}},
			{Name: "xarg", Parts: []TemplatePart{{Literal: "-x -y "}}},
			{Name: "stdout", Parts: []TemplatePart{{Ref: "a2", RefDirection: "output"}}},
		},
		Env: map[string][]TemplatePart{"MAXMEM": {{Ref: "env", RefDirection: "none"}}},
	}
}

func ptr[T any](v T) *T { return &v }

func TestTransformationValidate(t *testing.T) {
	tr := t1FromPaper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("paper example rejected: %v", err)
	}

	bad := tr
	bad.Args = append([]FormalArg{}, tr.Args...)
	bad.Args = append(bad.Args, FormalArg{Name: "a1", Direction: In})
	if err := bad.Validate(); err == nil {
		t.Error("duplicate formal accepted")
	}

	bad = tr
	bad.Exec = ""
	if err := bad.Validate(); err == nil {
		t.Error("simple TR with no exec accepted")
	}
	bad.Profile = map[string]string{"hints.pfnHint": "/usr/bin/app1"}
	if err := bad.Validate(); err != nil {
		t.Errorf("pfnHint should satisfy executable requirement: %v", err)
	}

	bad = tr
	bad.ArgTemplates = []ArgTemplate{{Parts: []TemplatePart{{Ref: "ghost"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("template referencing unknown formal accepted")
	}

	bad = tr
	bad.Env = map[string][]TemplatePart{"X": {{Ref: "ghost"}}}
	if err := bad.Validate(); err == nil {
		t.Error("env referencing unknown formal accepted")
	}

	bad = tr
	bad.Args[2].Types = []dtype.Type{{Content: "CMS"}}
	if err := bad.Validate(); err == nil {
		t.Error("string formal with dataset types accepted")
	}
}

func trans4FromPaper() Transformation {
	return Transformation{
		Name: "trans4",
		Kind: Compound,
		Args: []FormalArg{
			{Name: "a2", Direction: In},
			{Name: "a1", Direction: In},
			{Name: "a5", Direction: InOut, Default: ptr(DatasetActual("inout", "anywhere"))},
			{Name: "a4", Direction: InOut, Default: ptr(DatasetActual("inout", "somewhere"))},
			{Name: "a3", Direction: Out},
		},
		Calls: []Call{
			{TR: "trans1", Bindings: map[string]Actual{"a2": FormalRefActual("a4"), "a1": FormalRefActual("a1")}},
			{TR: "trans2", Bindings: map[string]Actual{"a2": FormalRefActual("a5"), "a1": FormalRefActual("a2")}},
			{TR: "trans3", Bindings: map[string]Actual{"a2": FormalRefActual("a5"), "a1": FormalRefActual("a4"), "a3": FormalRefActual("a3")}},
		},
	}
}

func TestCompoundValidate(t *testing.T) {
	tr := trans4FromPaper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("paper compound rejected: %v", err)
	}
	bad := tr
	bad.Calls = nil
	if err := bad.Validate(); err == nil {
		t.Error("compound with no calls accepted")
	}
	bad = tr
	bad.Exec = "/bin/x"
	if err := bad.Validate(); err == nil {
		t.Error("compound with exec accepted")
	}
	bad = trans4FromPaper()
	bad.Calls[0].Bindings["a1"] = FormalRefActual("ghost")
	if err := bad.Validate(); err == nil {
		t.Error("call binding referencing unknown formal accepted")
	}
	bad = trans4FromPaper()
	bad.Calls[0].TR = ""
	if err := bad.Validate(); err == nil {
		t.Error("call with empty TR ref accepted")
	}
}

func TestInputsOutputs(t *testing.T) {
	tr := trans4FromPaper()
	ins := tr.Inputs()
	wantIns := "a2,a1,a5,a4"
	if strings.Join(ins, ",") != wantIns {
		t.Errorf("Inputs = %v, want %s", ins, wantIns)
	}
	outs := tr.Outputs()
	if strings.Join(outs, ",") != "a5,a4,a3" {
		t.Errorf("Outputs = %v", outs)
	}
}

func TestActualValidateAndExtract(t *testing.T) {
	a := ListActual(StringActual("x"), DatasetActual("input", "f1"), FormalRefActual("a1"))
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds := a.Datasets(); len(ds) != 1 || ds[0] != "f1" {
		t.Errorf("Datasets = %v", ds)
	}
	if fr := a.FormalRefs(); len(fr) != 1 || fr[0] != "a1" {
		t.Errorf("FormalRefs = %v", fr)
	}
	if err := ListActual(ListActual()).Validate(); err == nil {
		t.Error("nested list accepted")
	}
	if err := DatasetActual("input", "").Validate(); err == nil {
		t.Error("empty dataset name accepted")
	}
	if err := DatasetActual("input", "has space").Validate(); err == nil {
		t.Error("dataset name with space accepted")
	}
	if err := (Actual{Kind: ActualKind(42)}).Validate(); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestDerivationSignature(t *testing.T) {
	d1 := Derivation{
		Name: "d1",
		TR:   "example1::t1",
		Params: map[string]Actual{
			"a2":  DatasetActual("output", "run1.exp15.T1932.summary"),
			"a1":  DatasetActual("input", "run1.exp15.T1932.raw"),
			"env": StringActual("20000"),
			"pa":  StringActual("600"),
		},
	}
	// Same params in a different insertion order must hash identically.
	d2 := Derivation{Name: "other-name", TR: d1.TR, Params: map[string]Actual{}}
	for _, k := range []string{"pa", "env", "a1", "a2"} {
		d2.Params[k] = d1.Params[k]
	}
	if d1.Signature() != d2.Signature() {
		t.Error("signature depends on map insertion order or name")
	}
	// Any change to params changes the signature.
	d3 := d1
	d3.Params = map[string]Actual{}
	for k, v := range d1.Params {
		d3.Params[k] = v
	}
	d3.Params["pa"] = StringActual("601")
	if d1.Signature() == d3.Signature() {
		t.Error("changed param did not change signature")
	}
	// Env participates.
	d4 := d1
	d4.Env = map[string]string{"MAXMEM": "1"}
	if d1.Signature() == d4.Signature() {
		t.Error("env did not change signature")
	}
	// TR version participates.
	d5 := d1
	d5.TR = "example1::t1:2"
	if d1.Signature() == d5.Signature() {
		t.Error("TR version did not change signature")
	}
	// Canonicalize fills ID.
	c := d1.Canonicalize()
	if c.ID != d1.Signature() {
		t.Error("Canonicalize did not set ID to signature")
	}
	if !strings.HasPrefix(c.ID, "dv-") {
		t.Errorf("signature format: %s", c.ID)
	}
	c2 := c.Canonicalize()
	if c2.ID != c.ID {
		t.Error("Canonicalize not idempotent")
	}
}

// Property: the signature never collides for single-param derivations
// with distinct string values, and string vs dataset actuals with the
// same value are distinguished.
func TestSignatureInjectivityQuick(t *testing.T) {
	f := func(v1, v2 string) bool {
		d1 := Derivation{TR: "t", Params: map[string]Actual{"a": StringActual(v1)}}
		d2 := Derivation{TR: "t", Params: map[string]Actual{"a": StringActual(v2)}}
		if (v1 == v2) != (d1.Signature() == d2.Signature()) {
			return false
		}
		ds := Derivation{TR: "t", Params: map[string]Actual{"a": {Kind: ADataset, Value: v1}}}
		return ds.Signature() != d1.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDerivationValidate(t *testing.T) {
	good := Derivation{Name: "d", TR: "t1", Params: map[string]Actual{"a": StringActual("x")}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.TR = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty TR accepted")
	}
	bad = good
	bad.Params = map[string]Actual{"": StringActual("x")}
	if err := bad.Validate(); err == nil {
		t.Error("unnamed formal accepted")
	}
	bad = good
	bad.Params = map[string]Actual{"a": FormalRefActual("p")}
	if err := bad.Validate(); err == nil {
		t.Error("unresolved formal ref accepted in derivation")
	}
}

func TestCheckBinding(t *testing.T) {
	tr := t1FromPaper()
	good := Derivation{
		Name: "d1", TR: "t1",
		Params: map[string]Actual{
			"a2": DatasetActual("output", "out.f"),
			"a1": DatasetActual("input", "in.f"),
			// env and pa defaulted
		},
	}
	if err := good.CheckBinding(tr); err != nil {
		t.Fatalf("good binding rejected: %v", err)
	}

	bad := good
	bad.Params = map[string]Actual{"a2": DatasetActual("", "o"), "a1": DatasetActual("", "i"), "ghost": StringActual("x")}
	if err := bad.CheckBinding(tr); err == nil {
		t.Error("unknown formal accepted")
	}

	bad = good
	bad.Params = map[string]Actual{"a1": DatasetActual("", "i")}
	if err := bad.CheckBinding(tr); err == nil {
		t.Error("missing required formal accepted")
	}

	bad = good
	bad.Params = map[string]Actual{"a2": StringActual("oops"), "a1": DatasetActual("", "i")}
	if err := bad.CheckBinding(tr); err == nil {
		t.Error("string bound to dataset formal accepted")
	}

	bad = good
	bad.Params = map[string]Actual{"a2": DatasetActual("", "o"), "a1": DatasetActual("", "i"), "pa": DatasetActual("", "d")}
	if err := bad.CheckBinding(tr); err == nil {
		t.Error("dataset bound to string formal accepted")
	}

	bad = good
	bad.Params = map[string]Actual{"a2": DatasetActual("input", "o"), "a1": DatasetActual("", "i")}
	if err := bad.CheckBinding(tr); err == nil {
		t.Error("anchor direction conflicting with formal accepted")
	}
}

func TestDerivationInputsOutputs(t *testing.T) {
	tr := t1FromPaper()
	d := Derivation{
		Name: "d1", TR: "t1",
		Params: map[string]Actual{
			"a2": DatasetActual("output", "file2"),
			"a1": DatasetActual("input", "file1"),
		},
	}
	ins := d.Inputs(tr)
	if len(ins) != 1 || ins[0] != "file1" {
		t.Errorf("Inputs = %v", ins)
	}
	outs := d.Outputs(tr)
	if len(outs) != 1 || outs[0] != "file2" {
		t.Errorf("Outputs = %v", outs)
	}
	// Defaults contribute datasets.
	trc := trans4FromPaper()
	dc := Derivation{
		Name: "dc", TR: "trans4",
		Params: map[string]Actual{
			"a2": DatasetActual("input", "i2"),
			"a1": DatasetActual("input", "i1"),
			"a3": DatasetActual("output", "o"),
		},
	}
	outs = dc.Outputs(trc)
	if strings.Join(outs, ",") != "anywhere,somewhere,o" {
		t.Errorf("compound Outputs with defaults = %v", outs)
	}
}

func TestFormalArgAccepts(t *testing.T) {
	r := dtype.StandardRegistry()
	f := FormalArg{Name: "a", Direction: In, Types: []dtype.Type{{Content: "CMS"}}}
	if !f.Accepts(r, dtype.Type{Content: "Zebra-file"}) {
		t.Error("subtype rejected")
	}
	if f.Accepts(r, dtype.Type{Content: "SDSS"}) {
		t.Error("non-conforming accepted")
	}
	any := FormalArg{Name: "a", Direction: In}
	if !any.Accepts(r, dtype.Type{Content: "SDSS"}) {
		t.Error("untyped formal should accept anything")
	}
	str := FormalArg{Name: "s", Direction: None}
	if str.Accepts(r, dtype.Universal) {
		t.Error("string formal accepted a dataset")
	}
}

func TestInvocation(t *testing.T) {
	start := time.Date(2002, 10, 1, 10, 0, 0, 0, time.UTC)
	iv := Invocation{
		ID: "iv-1", Derivation: "dv-x",
		Site: "uchicago", Host: "node17",
		Start: start, End: start.Add(20 * time.Second),
	}
	if err := iv.Validate(); err != nil {
		t.Fatal(err)
	}
	if iv.Duration() != 20*time.Second {
		t.Errorf("Duration = %v", iv.Duration())
	}
	if !iv.Succeeded() {
		t.Error("exit 0 should be success")
	}
	iv.ExitCode = 1
	if iv.Succeeded() {
		t.Error("exit 1 should not be success")
	}
	bad := iv
	bad.End = start.Add(-time.Second)
	if err := bad.Validate(); err == nil {
		t.Error("end before start accepted")
	}
	bad = iv
	bad.Derivation = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty derivation accepted")
	}
	bad = iv
	bad.ID = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty id accepted")
	}
}

func TestReplicaValidate(t *testing.T) {
	good := Replica{ID: "r1", Dataset: "foo", Site: "uchicago", PFN: "/store/foo", Size: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Replica){
		func(r *Replica) { r.ID = "" },
		func(r *Replica) { r.Dataset = "" },
		func(r *Replica) { r.Site = "" },
		func(r *Replica) { r.PFN = "" },
		func(r *Replica) { r.Size = -1 },
	} {
		r := good
		mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("invalid replica accepted: %+v", r)
		}
	}
}

func TestDatasetValidate(t *testing.T) {
	good := Dataset{Name: "foo", Descriptor: FileDescriptor{Path: "/f"}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.IsVirtual() {
		t.Error("dataset with descriptor reported virtual")
	}
	v := Dataset{Name: "bar"}
	if !v.IsVirtual() {
		t.Error("dataset without descriptor not reported virtual")
	}
	for _, bad := range []Dataset{
		{Name: ""},
		{Name: "has space"},
		{Name: "a", Size: -1},
		{Name: "a", Epoch: -1},
		{Name: "a", Descriptor: FileDescriptor{}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid dataset accepted: %+v", bad)
		}
	}
}

func TestCompatibilityAssertion(t *testing.T) {
	good := CompatibilityAssertion{Name: "sim", V1: "1.0", V2: "1.1", Mode: Equivalent}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []CompatibilityAssertion{
		{V1: "1", V2: "2", Mode: Equivalent},
		{Name: "x", V2: "2", Mode: Equivalent},
		{Name: "x", V1: "1", Mode: Equivalent},
		{Name: "x", V1: "1", V2: "2", Mode: "maybe"},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid assertion accepted: %+v", bad)
		}
	}
}

func TestAttributesClone(t *testing.T) {
	if Attributes(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
	a := Attributes{"k": "v"}
	c := a.Clone()
	c["k"] = "changed"
	if a["k"] != "v" {
		t.Error("clone not independent")
	}
}
