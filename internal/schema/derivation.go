package schema

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ActualKind discriminates the value expressions that can be bound to
// formal arguments in derivations and compound-transformation calls.
type ActualKind int

const (
	// AString is a literal string, passed by value.
	AString ActualKind = iota
	// ADataset is a dataset anchor @{direction:"lfn"}, passed by
	// reference to the logical dataset name.
	ADataset
	// AFormalRef is a reference ${formal} to an enclosing compound
	// transformation's formal argument; it never appears in a
	// fully-resolved derivation.
	AFormalRef
	// AList is an ordered list of actuals.
	AList
)

// String names the kind for diagnostics.
func (k ActualKind) String() string {
	switch k {
	case AString:
		return "string"
	case ADataset:
		return "dataset"
	case AFormalRef:
		return "formalref"
	case AList:
		return "list"
	default:
		return fmt.Sprintf("ActualKind(%d)", int(k))
	}
}

// Actual is one actual-argument value expression.
type Actual struct {
	Kind ActualKind `json:"kind"`
	// Value is the literal (AString), the logical dataset name
	// (ADataset), or the referenced formal name (AFormalRef).
	Value string `json:"value,omitempty"`
	// Direction annotates dataset anchors with the direction written
	// in VDL; it must agree with the formal at bind time.
	Direction string `json:"direction,omitempty"`
	// List holds the elements of an AList.
	List []Actual `json:"list,omitempty"`
}

// StringActual returns a literal string actual.
func StringActual(v string) Actual { return Actual{Kind: AString, Value: v} }

// DatasetActual returns a dataset-anchor actual.
func DatasetActual(direction, lfn string) Actual {
	return Actual{Kind: ADataset, Value: lfn, Direction: direction}
}

// FormalRefActual returns a ${formal} reference actual.
func FormalRefActual(name string) Actual { return Actual{Kind: AFormalRef, Value: name} }

// ListActual returns a list actual.
func ListActual(items ...Actual) Actual { return Actual{Kind: AList, List: items} }

// Validate checks structural well-formedness.
func (a Actual) Validate() error {
	switch a.Kind {
	case AString:
		return nil
	case ADataset:
		if err := checkLogicalName(a.Value); err != nil {
			return fmt.Errorf("schema: dataset actual: %w", err)
		}
		return nil
	case AFormalRef:
		if a.Value == "" {
			return fmt.Errorf("schema: empty formal reference")
		}
		return nil
	case AList:
		for i, e := range a.List {
			if e.Kind == AList {
				return fmt.Errorf("schema: nested list actual at index %d", i)
			}
			if err := e.Validate(); err != nil {
				return fmt.Errorf("schema: list element %d: %w", i, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("schema: invalid actual kind %d", int(a.Kind))
	}
}

// Datasets returns the logical dataset names referenced by the actual.
func (a Actual) Datasets() []string {
	switch a.Kind {
	case ADataset:
		return []string{a.Value}
	case AList:
		var out []string
		for _, e := range a.List {
			out = append(out, e.Datasets()...)
		}
		return out
	default:
		return nil
	}
}

// FormalRefs returns the formal names referenced by the actual.
func (a Actual) FormalRefs() []string {
	switch a.Kind {
	case AFormalRef:
		return []string{a.Value}
	case AList:
		var out []string
		for _, e := range a.List {
			out = append(out, e.FormalRefs()...)
		}
		return out
	default:
		return nil
	}
}

// canonical renders the actual deterministically for signature hashing.
func (a Actual) canonical(b *strings.Builder) {
	switch a.Kind {
	case AString:
		fmt.Fprintf(b, "s(%q)", a.Value)
	case ADataset:
		fmt.Fprintf(b, "d(%q)", a.Value)
	case AFormalRef:
		fmt.Fprintf(b, "r(%q)", a.Value)
	case AList:
		b.WriteString("l(")
		for _, e := range a.List {
			e.canonical(b)
		}
		b.WriteString(")")
	}
}

// Derivation specializes a transformation with actual arguments. It is
// both a historical record of what was done and a recipe for future
// executions.
type Derivation struct {
	// ID is the canonical signature (see Signature) or, before
	// canonicalization, empty.
	ID string `json:"id"`
	// Name is an optional user-visible handle (VDL's "d1").
	Name string `json:"name,omitempty"`
	// TR references the transformation being specialized.
	TR string `json:"tr"`
	// Params binds formal argument names to actuals.
	Params map[string]Actual `json:"params"`
	// Env carries environment variable overrides for the execution.
	Env map[string]string `json:"env,omitempty"`
	// Parent names the compound derivation that expanded into this one,
	// "" for top-level derivations.
	Parent string `json:"parent,omitempty"`
	// Attrs carries user-defined metadata.
	Attrs Attributes `json:"attrs,omitempty"`
}

// Signature computes the canonical derivation signature: a SHA-256 over
// the transformation reference and the canonicalized actual arguments
// and environment. Two derivations with equal signatures request the
// same computation — this identity is what makes "has this already been
// computed?" an O(1) catalog lookup.
func (d Derivation) Signature() string {
	var b strings.Builder
	b.WriteString("tr=")
	b.WriteString(d.TR)
	names := make([]string, 0, len(d.Params))
	for n := range d.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, ";%s=", n)
		a := d.Params[n]
		a.canonical(&b)
	}
	if len(d.Env) > 0 {
		keys := make([]string, 0, len(d.Env))
		for k := range d.Env {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, ";env.%s=%q", k, d.Env[k])
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return "dv-" + hex.EncodeToString(sum[:16])
}

// Canonicalize fills in the ID from the signature if unset and returns
// the derivation.
func (d Derivation) Canonicalize() Derivation {
	if d.ID == "" {
		d.ID = d.Signature()
	}
	return d
}

// Validate checks structural well-formedness (not type conformance,
// which needs the transformation and lives in the catalog).
func (d Derivation) Validate() error {
	if d.TR == "" {
		return fmt.Errorf("schema: derivation %q has empty transformation ref", d.Name)
	}
	if _, _, _, err := ParseTRRef(d.TR); err != nil {
		return err
	}
	for name, a := range d.Params {
		if name == "" {
			return fmt.Errorf("schema: derivation %q binds an unnamed formal", d.Name)
		}
		if err := a.Validate(); err != nil {
			return fmt.Errorf("schema: derivation %q param %q: %w", d.Name, name, err)
		}
		if len(a.FormalRefs()) > 0 {
			return fmt.Errorf("schema: derivation %q param %q contains unresolved formal references", d.Name, name)
		}
	}
	return nil
}

// Inputs returns the dataset names the derivation consumes, resolved
// against the transformation's formal directions.
func (d Derivation) Inputs(tr Transformation) []string {
	return d.datasetsWhere(tr, Direction.Reads)
}

// Outputs returns the dataset names the derivation produces.
func (d Derivation) Outputs(tr Transformation) []string {
	return d.datasetsWhere(tr, Direction.Writes)
}

func (d Derivation) datasetsWhere(tr Transformation, pred func(Direction) bool) []string {
	var out []string
	seen := make(map[string]bool)
	for _, f := range tr.Args {
		if !f.IsDataset() || !pred(f.Direction) {
			continue
		}
		a, ok := d.Params[f.Name]
		if !ok && f.Default != nil {
			a = *f.Default
		}
		for _, ds := range a.Datasets() {
			if !seen[ds] {
				seen[ds] = true
				out = append(out, ds)
			}
		}
	}
	return out
}

// BindingError describes a failed formal/actual binding.
type BindingError struct {
	Derivation string
	Formal     string
	Reason     string
}

func (e *BindingError) Error() string {
	return fmt.Sprintf("schema: derivation %q formal %q: %s", e.Derivation, e.Formal, e.Reason)
}

// CheckBinding verifies that the derivation's actuals agree with the
// transformation's signature: every non-defaulted formal bound, no
// unknown names, string/dataset kinds matching, and dataset anchor
// directions consistent with formal directions. Type conformance is
// checked separately by the catalog, which knows dataset types.
func (d Derivation) CheckBinding(tr Transformation) error {
	formals := make(map[string]FormalArg, len(tr.Args))
	for _, f := range tr.Args {
		formals[f.Name] = f
	}
	for name := range d.Params {
		if _, ok := formals[name]; !ok {
			return &BindingError{d.Name, name, "not a formal of " + tr.Ref()}
		}
	}
	for _, f := range tr.Args {
		a, bound := d.Params[f.Name]
		if !bound {
			if f.Default == nil {
				return &BindingError{d.Name, f.Name, "unbound and has no default"}
			}
			continue
		}
		if err := checkActualKind(f, a); err != nil {
			return &BindingError{d.Name, f.Name, err.Error()}
		}
	}
	return nil
}

func checkActualKind(f FormalArg, a Actual) error {
	switch a.Kind {
	case AString:
		if f.IsDataset() {
			return fmt.Errorf("string bound to dataset formal")
		}
	case ADataset:
		if !f.IsDataset() {
			return fmt.Errorf("dataset bound to string formal")
		}
		if a.Direction != "" {
			ad, err := ParseDirection(a.Direction)
			if err != nil {
				return err
			}
			if ad != f.Direction && !(f.Direction == InOut && (ad == In || ad == Out)) {
				return fmt.Errorf("anchor direction %s conflicts with formal direction %s", ad, f.Direction)
			}
		}
	case AList:
		for _, e := range a.List {
			if err := checkActualKind(f, e); err != nil {
				return err
			}
		}
	case AFormalRef:
		return fmt.Errorf("unresolved formal reference %q", a.Value)
	}
	return nil
}

// CompatMode classifies a version-compatibility assertion (§3.2's open
// issue; we implement the mechanism).
type CompatMode string

const (
	// Equivalent asserts the two versions produce interchangeable
	// results: derivations under one satisfy requests under the other.
	Equivalent CompatMode = "equivalent"
	// Supersedes asserts the newer version should be preferred but old
	// products remain valid.
	Supersedes CompatMode = "supersedes"
	// Incompatible explicitly revokes any assumed compatibility.
	Incompatible CompatMode = "incompatible"
)

// CompatibilityAssertion records a community judgement about two
// versions of one transformation.
type CompatibilityAssertion struct {
	Namespace string     `json:"namespace,omitempty"`
	Name      string     `json:"name"`
	V1        string     `json:"v1"`
	V2        string     `json:"v2"`
	Mode      CompatMode `json:"mode"`
	// AssertedBy identifies the authority making the claim.
	AssertedBy string `json:"assertedBy,omitempty"`
}

// Validate checks the assertion.
func (c CompatibilityAssertion) Validate() error {
	if c.Name == "" || c.V1 == "" || c.V2 == "" {
		return fmt.Errorf("schema: compatibility assertion needs name and both versions")
	}
	switch c.Mode {
	case Equivalent, Supersedes, Incompatible:
		return nil
	default:
		return fmt.Errorf("schema: unknown compatibility mode %q", c.Mode)
	}
}

// CanonicalBytes returns the deterministic encoding of any schema
// object, used for signing and content addressing. encoding/json
// marshals struct fields in declaration order and map keys sorted, so
// the output is stable.
func CanonicalBytes(v any) ([]byte, error) {
	return json.Marshal(v)
}
