package schema

import (
	"fmt"
	"strconv"
	"strings"
)

// Resolver looks up a transformation by its canonical reference.
type Resolver func(ref string) (Transformation, error)

// ExpandDerivation flattens a derivation of a (possibly compound)
// transformation into the list of simple-transformation derivations
// that execute it, in call order. A derivation of a simple
// transformation expands to itself.
//
// Unbound compound formals take their declared defaults. Dataset-anchor
// defaults name *intermediate* datasets; to keep two expansions of the
// same compound from colliding, the intermediate LFN is suffixed with a
// fragment of the parent derivation's signature — deterministic, so
// re-expanding the same derivation yields the same names (and therefore
// the same child signatures, preserving duplicate detection).
//
// Cycles among compound transformations are detected and reported.
func ExpandDerivation(dv Derivation, resolve Resolver) ([]Derivation, error) {
	dv = dv.Canonicalize()
	return expand(dv, resolve, nil)
}

func expand(dv Derivation, resolve Resolver, path []string) ([]Derivation, error) {
	tr, err := resolve(dv.TR)
	if err != nil {
		return nil, fmt.Errorf("schema: expand %s: %w", dv.TR, err)
	}
	if err := dv.CheckBinding(tr); err != nil {
		return nil, err
	}
	if tr.Kind == Simple {
		return []Derivation{dv}, nil
	}
	for _, p := range path {
		if p == dv.TR {
			return nil, fmt.Errorf("schema: compound transformation cycle through %s (path %s)", dv.TR, strings.Join(path, " -> "))
		}
	}
	path = append(path, dv.TR)

	// Build the binding environment: actuals for every formal, with
	// defaults applied and intermediate dataset names uniquified.
	env := make(map[string]Actual, len(tr.Args))
	suffix := intermediateSuffix(dv.ID)
	for _, f := range tr.Args {
		a, bound := dv.Params[f.Name]
		if !bound {
			if f.Default == nil {
				return nil, &BindingError{dv.Name, f.Name, "unbound and has no default"}
			}
			a = *f.Default
			if a.Kind == ADataset {
				a.Value = a.Value + "." + suffix
			}
		}
		env[f.Name] = a
	}

	var out []Derivation
	for i, call := range tr.Calls {
		child := Derivation{
			TR:     call.TR,
			Params: make(map[string]Actual, len(call.Bindings)),
			Env:    dv.Env,
			Parent: dv.ID,
		}
		if dv.Name != "" {
			child.Name = dv.Name + "." + strconv.Itoa(i)
		}
		for formal, a := range call.Bindings {
			resolved, err := substituteActual(a, env)
			if err != nil {
				return nil, fmt.Errorf("schema: expand %s call %d binding %q: %w", dv.TR, i, formal, err)
			}
			child.Params[formal] = resolved
		}
		child = child.Canonicalize()
		leaves, err := expand(child, resolve, path)
		if err != nil {
			return nil, err
		}
		out = append(out, leaves...)
	}
	return out, nil
}

// intermediateSuffix derives a short, collision-resistant suffix for
// intermediate dataset names from a derivation signature.
func intermediateSuffix(id string) string {
	s := strings.TrimPrefix(id, "dv-")
	if len(s) > 10 {
		s = s[:10]
	}
	return s
}

// substituteActual replaces formal references in a with the actuals
// bound in env. A reference substituted inside a list is flattened if
// it resolves to a list.
func substituteActual(a Actual, env map[string]Actual) (Actual, error) {
	switch a.Kind {
	case AString, ADataset:
		return a, nil
	case AFormalRef:
		v, ok := env[a.Value]
		if !ok {
			return Actual{}, fmt.Errorf("reference to unknown formal %q", a.Value)
		}
		// A direction annotation on the reference (e.g. ${output:a4})
		// narrows how the callee uses the dataset; the dataset anchor
		// keeps its identity but adopts the annotated direction so
		// CheckBinding can verify it against the callee's formal.
		if a.Direction != "" && v.Kind == ADataset {
			v.Direction = a.Direction
		}
		return v, nil
	case AList:
		out := Actual{Kind: AList}
		for _, e := range a.List {
			r, err := substituteActual(e, env)
			if err != nil {
				return Actual{}, err
			}
			if r.Kind == AList {
				out.List = append(out.List, r.List...)
			} else {
				out.List = append(out.List, r)
			}
		}
		return out, nil
	default:
		return Actual{}, fmt.Errorf("invalid actual kind %d", int(a.Kind))
	}
}

// MapResolver builds a Resolver over a fixed set of transformations,
// keyed by canonical ref. When a ref omits the version, the resolver
// falls back to an unversioned entry with the same namespace and name.
func MapResolver(trs ...Transformation) Resolver {
	byRef := make(map[string]Transformation, len(trs))
	for _, tr := range trs {
		byRef[tr.Ref()] = tr
	}
	return func(ref string) (Transformation, error) {
		if tr, ok := byRef[ref]; ok {
			return tr, nil
		}
		return Transformation{}, fmt.Errorf("unknown transformation %q", ref)
	}
}
