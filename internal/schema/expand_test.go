package schema

import (
	"reflect"
	"strings"
	"testing"
)

func simpleTR(name string, outs, ins int) Transformation {
	tr := Transformation{Name: name, Kind: Simple, Exec: "/usr/bin/" + name}
	for i := 0; i < outs; i++ {
		tr.Args = append(tr.Args, FormalArg{Name: "o" + itoa(i), Direction: Out})
	}
	for i := 0; i < ins; i++ {
		tr.Args = append(tr.Args, FormalArg{Name: "i" + itoa(i), Direction: In})
	}
	return tr
}

func itoa(i int) string {
	b := []byte{}
	if i == 0 {
		return "0"
	}
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// paperTrans4 reconstructs Appendix A's compound trans4 using the
// simple two-arg transformations trans1..trans3.
func paperTrans4() []Transformation {
	trans1 := Transformation{Name: "trans1", Kind: Simple, Exec: "/usr/bin/app1",
		Args: []FormalArg{{Name: "a2", Direction: Out}, {Name: "a1", Direction: In}}}
	trans2 := Transformation{Name: "trans2", Kind: Simple, Exec: "/usr/bin/app2",
		Args: []FormalArg{{Name: "a2", Direction: Out}, {Name: "a1", Direction: In}}}
	trans3 := Transformation{Name: "trans3", Kind: Simple, Exec: "/usr/bin/app3",
		Args: []FormalArg{{Name: "a2", Direction: In}, {Name: "a1", Direction: In}, {Name: "a3", Direction: Out}}}
	trans4 := Transformation{Name: "trans4", Kind: Compound,
		Args: []FormalArg{
			{Name: "a2", Direction: In},
			{Name: "a1", Direction: In},
			{Name: "a5", Direction: InOut, Default: ptr(DatasetActual("inout", "anywhere"))},
			{Name: "a4", Direction: InOut, Default: ptr(DatasetActual("inout", "somewhere"))},
			{Name: "a3", Direction: Out},
		},
		Calls: []Call{
			{TR: "trans1", Bindings: map[string]Actual{"a2": refWithDir("output", "a4"), "a1": FormalRefActual("a1")}},
			{TR: "trans2", Bindings: map[string]Actual{"a2": refWithDir("output", "a5"), "a1": FormalRefActual("a2")}},
			{TR: "trans3", Bindings: map[string]Actual{"a2": refWithDir("input", "a5"), "a1": refWithDir("input", "a4"), "a3": refWithDir("output", "a3")}},
		}}
	return []Transformation{trans1, trans2, trans3, trans4}
}

func refWithDir(dir, name string) Actual {
	a := FormalRefActual(name)
	a.Direction = dir
	return a
}

func TestExpandSimpleIsIdentity(t *testing.T) {
	tr := simpleTR("t", 1, 1)
	dv := Derivation{Name: "d", TR: "t", Params: map[string]Actual{
		"o0": DatasetActual("output", "out"),
		"i0": DatasetActual("input", "in"),
	}}.Canonicalize()
	got, err := ExpandDerivation(dv, MapResolver(tr))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], dv) {
		t.Errorf("expand simple: %+v", got)
	}
}

func TestExpandPaperTrans4(t *testing.T) {
	trs := paperTrans4()
	dv := Derivation{Name: "run", TR: "trans4", Params: map[string]Actual{
		"a2": DatasetActual("input", "in2"),
		"a1": DatasetActual("input", "in1"),
		"a3": DatasetActual("output", "final"),
	}}.Canonicalize()
	leaves, err := ExpandDerivation(dv, MapResolver(trs...))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 3 {
		t.Fatalf("got %d leaves", len(leaves))
	}
	// Call order preserved.
	if leaves[0].TR != "trans1" || leaves[1].TR != "trans2" || leaves[2].TR != "trans3" {
		t.Errorf("order: %s %s %s", leaves[0].TR, leaves[1].TR, leaves[2].TR)
	}
	// Intermediates are uniquified but shared across calls.
	a4name := leaves[0].Params["a2"].Value
	if !strings.HasPrefix(a4name, "somewhere.") {
		t.Errorf("intermediate a4: %q", a4name)
	}
	if leaves[2].Params["a1"].Value != a4name {
		t.Errorf("trans3 should read the same intermediate: %q vs %q", leaves[2].Params["a1"].Value, a4name)
	}
	a5name := leaves[1].Params["a2"].Value
	if !strings.HasPrefix(a5name, "anywhere.") || leaves[2].Params["a2"].Value != a5name {
		t.Errorf("intermediate a5 wiring: %q, %q", a5name, leaves[2].Params["a2"].Value)
	}
	// Passthroughs resolve to the parent's actuals.
	if leaves[0].Params["a1"].Value != "in1" || leaves[1].Params["a1"].Value != "in2" {
		t.Errorf("passthrough: %+v", leaves)
	}
	if leaves[2].Params["a3"].Value != "final" {
		t.Errorf("final output: %+v", leaves[2].Params["a3"])
	}
	// Children carry parent linkage and derived names.
	for i, l := range leaves {
		if l.Parent != dv.ID {
			t.Errorf("leaf %d parent = %q", i, l.Parent)
		}
		if l.Name != "run."+itoa(i) {
			t.Errorf("leaf %d name = %q", i, l.Name)
		}
		if l.ID == "" {
			t.Errorf("leaf %d not canonicalized", i)
		}
	}
}

func TestExpandDeterministic(t *testing.T) {
	trs := paperTrans4()
	dv := Derivation{TR: "trans4", Params: map[string]Actual{
		"a2": DatasetActual("input", "x2"),
		"a1": DatasetActual("input", "x1"),
		"a3": DatasetActual("output", "y"),
	}}
	l1, err := ExpandDerivation(dv, MapResolver(trs...))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ExpandDerivation(dv, MapResolver(trs...))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Error("expansion not deterministic")
	}
	// Different parent params → different intermediates.
	dv2 := Derivation{TR: "trans4", Params: map[string]Actual{
		"a2": DatasetActual("input", "x2"),
		"a1": DatasetActual("input", "OTHER"),
		"a3": DatasetActual("output", "y2"),
	}}
	l3, err := ExpandDerivation(dv2, MapResolver(trs...))
	if err != nil {
		t.Fatal(err)
	}
	if l1[0].Params["a2"].Value == l3[0].Params["a2"].Value {
		t.Error("intermediates collide across distinct expansions")
	}
}

func TestExpandNestedCompound(t *testing.T) {
	trs := paperTrans4()
	trans5 := Transformation{Name: "trans5", Kind: Compound,
		Args: []FormalArg{
			{Name: "a2", Direction: In},
			{Name: "a1", Direction: In},
			{Name: "a4", Direction: InOut, Default: ptr(DatasetActual("inout", "someplace"))},
			{Name: "a3", Direction: Out},
		},
		Calls: []Call{
			{TR: "trans1", Bindings: map[string]Actual{"a2": refWithDir("output", "a4"), "a1": FormalRefActual("a1")}},
			{TR: "trans4", Bindings: map[string]Actual{"a2": refWithDir("input", "a4"), "a1": FormalRefActual("a2"), "a3": FormalRefActual("a3")}},
		}}
	dv := Derivation{Name: "n", TR: "trans5", Params: map[string]Actual{
		"a2": DatasetActual("input", "in2"),
		"a1": DatasetActual("input", "in1"),
		"a3": DatasetActual("output", "out"),
	}}
	leaves, err := ExpandDerivation(dv, MapResolver(append(trs, trans5)...))
	if err != nil {
		t.Fatal(err)
	}
	// trans1 + (trans1,trans2,trans3) = 4 leaves, all simple.
	if len(leaves) != 4 {
		t.Fatalf("got %d leaves: %+v", len(leaves), leaves)
	}
	for _, l := range leaves {
		if l.TR == "trans4" || l.TR == "trans5" {
			t.Errorf("compound leaked into leaves: %s", l.TR)
		}
	}
	// someplace intermediate flows from trans1 output into trans4's input.
	someplace := leaves[0].Params["a2"].Value
	if !strings.HasPrefix(someplace, "someplace.") {
		t.Errorf("outer intermediate: %q", someplace)
	}
	if leaves[2].Params["a1"].Value != someplace {
		t.Errorf("inner trans2 should read outer intermediate via trans4.a2... got %q want %q", leaves[2].Params["a1"].Value, someplace)
	}
}

func TestExpandCycleDetected(t *testing.T) {
	a := Transformation{Name: "a", Kind: Compound,
		Args:  []FormalArg{{Name: "x", Direction: In}},
		Calls: []Call{{TR: "b", Bindings: map[string]Actual{"x": FormalRefActual("x")}}}}
	b := Transformation{Name: "b", Kind: Compound,
		Args:  []FormalArg{{Name: "x", Direction: In}},
		Calls: []Call{{TR: "a", Bindings: map[string]Actual{"x": FormalRefActual("x")}}}}
	dv := Derivation{TR: "a", Params: map[string]Actual{"x": DatasetActual("input", "d")}}
	_, err := ExpandDerivation(dv, MapResolver(a, b))
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestExpandErrors(t *testing.T) {
	trs := paperTrans4()
	// Unknown TR.
	_, err := ExpandDerivation(Derivation{TR: "ghost"}, MapResolver(trs...))
	if err == nil {
		t.Error("unknown TR accepted")
	}
	// Missing required binding.
	dv := Derivation{TR: "trans4", Params: map[string]Actual{"a1": DatasetActual("input", "x")}}
	if _, err := ExpandDerivation(dv, MapResolver(trs...)); err == nil {
		t.Error("missing binding accepted")
	}
	// Call referencing unknown formal (corrupt compound).
	bad := trs[3]
	bad.Calls = append([]Call{}, bad.Calls...)
	bad.Calls[0] = Call{TR: "trans1", Bindings: map[string]Actual{"a2": FormalRefActual("ghost"), "a1": FormalRefActual("a1")}}
	dv = Derivation{TR: "trans4", Params: map[string]Actual{
		"a2": DatasetActual("input", "x2"), "a1": DatasetActual("input", "x1"), "a3": DatasetActual("output", "y"),
	}}
	if _, err := ExpandDerivation(dv, MapResolver(trs[0], trs[1], trs[2], bad)); err == nil {
		t.Error("dangling formal ref in call accepted")
	}
}

func TestExpandListFlattening(t *testing.T) {
	inner := Transformation{Name: "many", Kind: Simple, Exec: "/bin/m",
		Args: []FormalArg{{Name: "ins", Direction: In}, {Name: "out", Direction: Out}}}
	comp := Transformation{Name: "c", Kind: Compound,
		Args: []FormalArg{{Name: "files", Direction: In}, {Name: "out", Direction: Out}},
		Calls: []Call{{TR: "many", Bindings: map[string]Actual{
			"ins": ListActual(FormalRefActual("files"), DatasetActual("input", "extra")),
			"out": FormalRefActual("out"),
		}}}}
	dv := Derivation{TR: "c", Params: map[string]Actual{
		"files": ListActual(DatasetActual("input", "f1"), DatasetActual("input", "f2")),
		"out":   DatasetActual("output", "o"),
	}}
	leaves, err := ExpandDerivation(dv, MapResolver(inner, comp))
	if err != nil {
		t.Fatal(err)
	}
	got := leaves[0].Params["ins"].Datasets()
	if !reflect.DeepEqual(got, []string{"f1", "f2", "extra"}) {
		t.Errorf("flattened list: %v", got)
	}
}
