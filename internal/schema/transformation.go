package schema

import (
	"fmt"
	"strings"

	"chimera/internal/dtype"
)

// Direction is the directionality of a transformation argument.
type Direction int

const (
	// In marks a dataset argument read by the transformation.
	In Direction = iota
	// Out marks a dataset argument created/written by the transformation.
	Out
	// InOut marks a dataset argument both read and written (compound
	// transformations use it for intermediate datasets).
	InOut
	// None marks a by-value string parameter (VDL's "none").
	None
)

var directionNames = map[Direction]string{In: "input", Out: "output", InOut: "inout", None: "none"}

// String returns the VDL keyword for the direction.
func (d Direction) String() string {
	if s, ok := directionNames[d]; ok {
		return s
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// ParseDirection parses a VDL direction keyword.
func ParseDirection(s string) (Direction, error) {
	switch strings.ToLower(s) {
	case "input", "in":
		return In, nil
	case "output", "out":
		return Out, nil
	case "inout":
		return InOut, nil
	case "none", "string":
		return None, nil
	}
	return 0, fmt.Errorf("schema: unknown direction %q", s)
}

// Reads reports whether the direction implies the argument is consumed.
func (d Direction) Reads() bool { return d == In || d == InOut }

// Writes reports whether the direction implies the argument is produced.
func (d Direction) Writes() bool { return d == Out || d == InOut }

// MarshalText implements encoding.TextMarshaler.
func (d Direction) MarshalText() ([]byte, error) { return []byte(d.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (d *Direction) UnmarshalText(b []byte) error {
	v, err := ParseDirection(string(b))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// FormalArg is one formal argument of a transformation's type signature.
type FormalArg struct {
	// Name of the formal argument.
	Name string `json:"name"`
	// Direction: input/output/inout for datasets, none for strings.
	Direction Direction `json:"direction"`
	// Types is the union of dataset types the argument accepts; empty
	// means the untyped "Dataset" for dataset args, and is ignored for
	// None (string) args.
	Types []dtype.Type `json:"types,omitempty"`
	// Default is an optional default value: a literal string for None
	// arguments, or a dataset anchor expression for dataset arguments
	// (compound transformations default intermediates this way).
	Default *Actual `json:"default,omitempty"`
}

// IsDataset reports whether the argument is passed by dataset reference.
func (f FormalArg) IsDataset() bool { return f.Direction != None }

// Accepts reports whether a dataset of type t may be bound to this
// formal under registry r. Formals with an empty type union accept any
// dataset (the untyped "Dataset" base type).
func (f FormalArg) Accepts(r *dtype.Registry, t dtype.Type) bool {
	if !f.IsDataset() {
		return false
	}
	if len(f.Types) == 0 {
		return true
	}
	return r.ConformsUnion(t, f.Types)
}

// TemplatePart is one piece of an argument template: either a literal
// string or a reference to a formal argument.
type TemplatePart struct {
	// Literal text, used when Ref is empty.
	Literal string `json:"literal,omitempty"`
	// Ref names a formal argument whose bound value is substituted.
	Ref string `json:"ref,omitempty"`
	// RefDirection optionally annotates the reference with the
	// direction written in VDL (e.g. ${input:a1}); informational.
	RefDirection string `json:"refDirection,omitempty"`
}

// ArgTemplate describes how one command-line argument (or a stdio
// redirection) of a simple transformation's invocation is assembled
// from literals and formal-argument references.
type ArgTemplate struct {
	// Name of the template; the reserved names "stdin", "stdout" and
	// "stderr" redirect standard streams, anything else (including "")
	// contributes to the command line in declaration order.
	Name string `json:"name,omitempty"`
	// Parts are concatenated after substitution.
	Parts []TemplatePart `json:"parts"`
}

// IsStdio reports whether the template redirects a standard stream.
func (a ArgTemplate) IsStdio() bool {
	return a.Name == "stdin" || a.Name == "stdout" || a.Name == "stderr"
}

// Call is one step of a compound transformation: an invocation of a
// named transformation with bindings from the compound's formals (or
// literals) to the callee's formals.
type Call struct {
	// TR references the called transformation (see ParseTRRef).
	TR string `json:"tr"`
	// Bindings maps callee formal names to value expressions.
	Bindings map[string]Actual `json:"bindings"`
}

// TRKind distinguishes simple (black box) from compound (DAG-composing)
// transformations.
type TRKind int

const (
	// Simple transformations are executable black boxes.
	Simple TRKind = iota
	// Compound transformations compose calls to other transformations
	// into a directed acyclic execution graph.
	Compound
)

// String returns "simple" or "compound".
func (k TRKind) String() string {
	if k == Compound {
		return "compound"
	}
	return "simple"
}

// Transformation is a typed computational procedure. Its identity is
// the triple (namespace, name, version).
type Transformation struct {
	// Namespace scopes the name; "" is the default namespace.
	Namespace string `json:"namespace,omitempty"`
	// Name of the transformation.
	Name string `json:"name"`
	// Version string; "" means unversioned.
	Version string `json:"version,omitempty"`
	// Kind is Simple or Compound.
	Kind TRKind `json:"kind"`
	// Args is the ordered type signature.
	Args []FormalArg `json:"args"`

	// Exec is the executable pathname (simple transformations). The
	// paper's VDL also allows the executable as a profile hint; Exec
	// takes precedence when both are set.
	Exec string `json:"exec,omitempty"`
	// ArgTemplates assemble the command line and stdio redirections
	// (simple transformations).
	ArgTemplates []ArgTemplate `json:"argTemplates,omitempty"`
	// Env maps environment variable names to value templates (simple
	// transformations).
	Env map[string][]TemplatePart `json:"env,omitempty"`
	// Profile carries scheduler/planner hints (e.g. hints.pfnHint).
	Profile map[string]string `json:"profile,omitempty"`

	// Calls is the body of a compound transformation, in declaration
	// order; data dependencies between calls are inferred from shared
	// dataset bindings.
	Calls []Call `json:"calls,omitempty"`

	// Attrs carries user-defined metadata for discovery.
	Attrs Attributes `json:"attrs,omitempty"`
}

// Ref returns the canonical reference "namespace::name:version" with
// empty namespace/version elided.
func (t Transformation) Ref() string {
	return FormatTRRef(t.Namespace, t.Name, t.Version)
}

// FormatTRRef builds a canonical transformation reference.
func FormatTRRef(namespace, name, version string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteString("::")
	}
	b.WriteString(name)
	if version != "" {
		b.WriteString(":")
		b.WriteString(version)
	}
	return b.String()
}

// ParseTRRef splits a "namespace::name:version" reference; namespace
// and version may be absent.
func ParseTRRef(ref string) (namespace, name, version string, err error) {
	rest := ref
	if i := strings.Index(rest, "::"); i >= 0 {
		namespace, rest = rest[:i], rest[i+2:]
	}
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		rest, version = rest[:i], rest[i+1:]
		if version == "" {
			return "", "", "", fmt.Errorf("schema: transformation ref %q has empty version", ref)
		}
	}
	name = rest
	if name == "" {
		return "", "", "", fmt.Errorf("schema: transformation ref %q has empty name", ref)
	}
	return namespace, name, version, nil
}

// Formal returns the formal argument with the given name, if any.
func (t Transformation) Formal(name string) (FormalArg, bool) {
	for _, f := range t.Args {
		if f.Name == name {
			return f, true
		}
	}
	return FormalArg{}, false
}

// Inputs returns the names of formals with a reading direction.
func (t Transformation) Inputs() []string { return t.argsWhere(Direction.Reads) }

// Outputs returns the names of formals with a writing direction.
func (t Transformation) Outputs() []string { return t.argsWhere(Direction.Writes) }

func (t Transformation) argsWhere(pred func(Direction) bool) []string {
	var out []string
	for _, f := range t.Args {
		if f.IsDataset() && pred(f.Direction) {
			out = append(out, f.Name)
		}
	}
	return out
}

// Validate checks the transformation's structural invariants: unique
// formal names, templates referencing declared formals, compound calls
// binding only declared names, and kind-appropriate bodies.
func (t Transformation) Validate() error {
	if err := checkLogicalName(t.Name); err != nil {
		return fmt.Errorf("schema: transformation: %w", err)
	}
	seen := make(map[string]bool, len(t.Args))
	for _, f := range t.Args {
		if f.Name == "" {
			return fmt.Errorf("schema: transformation %q has unnamed formal", t.Ref())
		}
		if seen[f.Name] {
			return fmt.Errorf("schema: transformation %q has duplicate formal %q", t.Ref(), f.Name)
		}
		seen[f.Name] = true
		if f.Direction == None && len(f.Types) > 0 {
			return fmt.Errorf("schema: transformation %q: string formal %q cannot carry dataset types", t.Ref(), f.Name)
		}
	}
	switch t.Kind {
	case Simple:
		if len(t.Calls) > 0 {
			return fmt.Errorf("schema: simple transformation %q has calls", t.Ref())
		}
		if t.Exec == "" && t.Profile["hints.pfnHint"] == "" {
			return fmt.Errorf("schema: simple transformation %q has no executable (exec or hints.pfnHint)", t.Ref())
		}
		for _, at := range t.ArgTemplates {
			for _, p := range at.Parts {
				if p.Ref != "" && !seen[p.Ref] {
					return fmt.Errorf("schema: transformation %q: template %q references unknown formal %q", t.Ref(), at.Name, p.Ref)
				}
			}
		}
		for name, parts := range t.Env {
			for _, p := range parts {
				if p.Ref != "" && !seen[p.Ref] {
					return fmt.Errorf("schema: transformation %q: env %q references unknown formal %q", t.Ref(), name, p.Ref)
				}
			}
		}
	case Compound:
		if len(t.Calls) == 0 {
			return fmt.Errorf("schema: compound transformation %q has no calls", t.Ref())
		}
		if t.Exec != "" {
			return fmt.Errorf("schema: compound transformation %q has an executable", t.Ref())
		}
		for i, c := range t.Calls {
			if _, _, _, err := ParseTRRef(c.TR); err != nil {
				return fmt.Errorf("schema: compound %q call %d: %w", t.Ref(), i, err)
			}
			for formal, a := range c.Bindings {
				if err := a.Validate(); err != nil {
					return fmt.Errorf("schema: compound %q call %d binding %q: %w", t.Ref(), i, formal, err)
				}
				for _, ref := range a.FormalRefs() {
					if !seen[ref] {
						return fmt.Errorf("schema: compound %q call %d binding %q references unknown formal %q", t.Ref(), i, formal, ref)
					}
				}
			}
		}
	default:
		return fmt.Errorf("schema: transformation %q has invalid kind %d", t.Ref(), int(t.Kind))
	}
	return nil
}
