package chimera

// Integration tests spanning the whole stack: VDL composition through
// distributed catalogs, planning, simulated execution, provenance,
// trust, durability and recompute — the six facets of Figure 5 working
// together as one system.

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/core"
	"chimera/internal/dtype"
	"chimera/internal/executor"
	"chimera/internal/federation"
	"chimera/internal/grid"
	"chimera/internal/schema"
	"chimera/internal/trust"
	"chimera/internal/vds"
	"chimera/internal/workload"
)

const campaignVDL = `
TYPE content HEP;
TYPE content RawEvents extends HEP;
TYPE content Reconstructed extends HEP;

DS run15<RawEvents> size "200000000";

TR reconstruct( output o<Reconstructed>, input i<RawEvents>, none cal="v2" ) {
  argument carg = "-c "${none:cal};
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/hep/bin/reco";
}
TR select( output o, input i<Reconstructed> ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/hep/bin/select";
}
TR recoselect( input i, inout mid=@{inout:"reco":""}, output o ) {
  reconstruct( o=${output:mid}, i=${i} );
  select( o=${o}, i=${input:mid} );
}
DV analysis->recoselect( i=@{input:"run15"}, o=@{output:"golden-events"} );
`

func newFourSiteSystem(t *testing.T) *core.System {
	t.Helper()
	g, err := grid.FourSiteTestbed([4]int{8, 8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSimulated("integration", g, 77, dtype.StandardRegistry())
	return sys
}

// TestFullLifecycle walks one request through composition, type
// checking, estimation, planned execution on the simulated grid,
// provenance audit, reuse, and calibration-error recompute.
func TestFullLifecycle(t *testing.T) {
	sys := newFourSiteSystem(t)
	if err := sys.LoadVDL(campaignVDL); err != nil {
		t.Fatal(err)
	}
	// The compound expanded into two typed stages; the type system
	// accepted RawEvents <= RawEvents and intermediate bindings.
	if got := sys.Cat.Stats().Derivations; got != 2 {
		t.Fatalf("derivations: %d", got)
	}
	// Raw data lives at fnal.
	if err := sys.Cat.AddReplica(schema.Replica{
		ID: "prim", Dataset: "run15", Site: "fnal", PFN: "/tape/run15", Size: 200e6,
	}); err != nil {
		t.Fatal(err)
	}

	// Estimate, then materialize.
	est, err := sys.Estimate("golden-events", 32)
	if err != nil || est.TotalWork <= 0 {
		t.Fatalf("estimate: %+v %v", est, err)
	}
	res, err := sys.Materialize("golden-events")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Reused || res[0].Report.Completed != 2 {
		t.Fatalf("materialize: %+v", res[0])
	}

	// Provenance reaches the raw data with invocation detail.
	lin, err := sys.Lineage("golden-events")
	if err != nil {
		t.Fatal(err)
	}
	if len(lin.Steps) != 2 || lin.PrimarySources[0] != "run15" {
		t.Fatalf("lineage: %+v", lin)
	}
	for _, step := range lin.Steps {
		if len(step.Invocations) != 1 || !step.Invocations[0].Succeeded() {
			t.Fatalf("invocation detail: %+v", step)
		}
	}

	// Discovery: typed and relationship predicates work together.
	ds, err := sys.SearchDatasets(`type <= HEP and descendantof(run15) or name = golden-events`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) < 1 {
		t.Fatal("discovery found nothing")
	}

	// Reuse: a second identical request runs nothing.
	res, err = sys.Materialize("golden-events")
	if err != nil || !res[0].Reused {
		t.Fatalf("reuse: %+v %v", res, err)
	}

	// Calibration error on the raw data: recompute downstream.
	invBefore := sys.Cat.Stats().Invocations
	if _, err := sys.MarkUpdated("run15"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Recompute("run15"); err != nil {
		t.Fatal(err)
	}
	if got := sys.Cat.Stats().Invocations; got != invBefore+2 {
		t.Fatalf("recompute invocations: %d -> %d", invBefore, got)
	}
	if !sys.Cat.Materialized("golden-events") {
		t.Fatal("golden-events stale after recompute")
	}
}

// TestCollaborationScenario spans two organizations: one runs a catalog
// service and a campaign; a partner imports its transformations via
// vdp://, contributes signed quality annotations, and a federated index
// serves discovery over both.
func TestCollaborationScenario(t *testing.T) {
	// Organization A: runs the campaign.
	orgA := newFourSiteSystem(t)
	if err := orgA.LoadVDL(campaignVDL); err != nil {
		t.Fatal(err)
	}
	orgA.Cat.AddReplica(schema.Replica{ID: "prim", Dataset: "run15", Site: "fnal", PFN: "/t", Size: 200e6})
	if _, err := orgA.Materialize("golden-events"); err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(orgA.Handler())
	defer srvA.Close()

	// Organization B: imports A's compound transformation by hyperlink
	// and applies it to its own data.
	orgB := newFourSiteSystem(t)
	reg := vds.NewRegistry()
	reg.Register("orgA", srvA.URL)
	if _, err := orgB.ImportTransformation(reg, "vdp://orgA/recoselect"); err != nil {
		t.Fatal(err)
	}
	orgB.Cat.AddDataset(schema.Dataset{Name: "run99", Type: dtype.Type{Content: "RawEvents"}, Size: 1e6})
	orgB.Cat.AddReplica(schema.Replica{ID: "p99", Dataset: "run99", Site: "anl", PFN: "/d", Size: 1e6})
	if _, err := orgB.Define(schema.Derivation{TR: "recoselect", Params: map[string]schema.Actual{
		"i": schema.DatasetActual("input", "run99"),
		"o": schema.DatasetActual("output", "my-golden"),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := orgB.Materialize("my-golden"); err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(orgB.Handler())
	defer srvB.Close()

	// Federated discovery across both.
	ix := federation.NewIndex("two-orgs", "collaboration")
	ix.AddMember("orgA", vds.NewClient(srvA.URL))
	ix.AddMember("orgB", vds.NewClient(srvB.URL))
	if err := ix.Crawl(); err != nil {
		t.Fatal(err)
	}
	hits, err := ix.SearchDatasets(`name ~ "*golden*"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("federated hits: %+v", hits)
	}

	// Quality: A's office signs its product; B's trust store, anchored
	// at the office, verifies through the wire.
	office, err := trust.NewAuthority("orgA-office")
	if err != nil {
		t.Fatal(err)
	}
	clientA := vds.NewClient(srvA.URL)
	goldenDS, err := clientA.Dataset("golden-events")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := schema.CanonicalBytes(goldenDS)
	if err := clientA.PutSignature(trust.KindDataset, "golden-events",
		office.SignEntry(trust.KindDataset, "golden-events", payload)); err != nil {
		t.Fatal(err)
	}
	sigs, err := clientA.Signatures(trust.KindDataset, "golden-events")
	if err != nil || len(sigs) != 1 {
		t.Fatal(err)
	}
	store := trust.NewStore()
	store.AddRoot(office.Authority)
	if err := store.Verify(trust.KindDataset, "golden-events", payload, sigs[0]); err != nil {
		t.Fatalf("cross-org verification: %v", err)
	}
}

// TestDurableCampaignRestart runs half a campaign against a durable
// catalog, "crashes", reopens, and finishes — provenance and reuse
// intact across the restart.
func TestDurableCampaignRestart(t *testing.T) {
	dir := t.TempDir()
	w := workload.CMS(workload.CMSParams{Runs: 6, Merge: true})

	open := func() (*catalog.Catalog, *core.System) {
		cat, err := catalog.Open(filepath.Join(dir, "vdc"), nil, catalog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sys := core.NewWithCatalog("durable", t.TempDir(), cat)
		for _, name := range []string{"cmkin", "cmsim", "oorec", "analyze", "combine"} {
			name := name
			sys.Register(name, func(task executor.Task) error {
				// Touch real files so outputs exist.
				for _, out := range task.Node.Outputs {
					if err := os.WriteFile(filepath.Join(task.Workspace, sanitize(out)), []byte(name), 0o644); err != nil {
						return err
					}
				}
				return nil
			})
		}
		return cat, sys
	}

	cat, sys := open()
	if err := w.Install(cat); err != nil {
		t.Fatal(err)
	}
	// Materialize three runs' ntuples, then "crash".
	if _, err := sys.Materialize("ntuple.run0", "ntuple.run1", "ntuple.run2"); err != nil {
		t.Fatal(err)
	}
	preStats := cat.Stats()
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, sys2 := open()
	defer cat2.Close()
	if got := cat2.Stats(); got != preStats {
		t.Fatalf("state after restart: %+v vs %+v", got, preStats)
	}
	// Finishing the campaign reuses the completed runs.
	res, err := sys2.Materialize("histograms")
	if err != nil {
		t.Fatal(err)
	}
	// 6 runs × 4 stages + merge = 25 total; 12 already done (3 runs ×
	// 4 stages); note materialized intermediates prune the plan.
	if res[0].Report.Completed != 13 {
		t.Fatalf("jobs after restart: %+v", res[0].Report)
	}
	lin, err := sys2.Lineage("histograms")
	if err != nil || len(lin.Steps) != 25 {
		t.Fatalf("post-restart lineage: %d steps, %v", len(lin.Steps), err)
	}
	// Invocations recorded before the crash are still in the trail.
	recorded := 0
	for _, step := range lin.Steps {
		recorded += len(step.Invocations)
	}
	if recorded != 25 {
		t.Fatalf("invocations across restart: %d", recorded)
	}
}

func sanitize(name string) string { return strings.ReplaceAll(name, "/", "_") }

// TestScaleSmoke exercises the paper-scale shape cheaply: a ~1200-node
// SDSS campaign end to end on the four-site grid, asserting campaign
// metrics match the structure the paper reports.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g, err := grid.FourSiteTestbed([4]int{30, 30, 30, 30})
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSimulated("sdss", g, 5, nil)
	w := workload.SDSS(workload.SDSSParams{Fields: 400, Window: 2, StripeSize: 200, Seed: 1})
	if err := w.Install(sys.Cat); err != nil {
		t.Fatal(err)
	}
	if err := w.PlacePrimary(sys.Cat, []string{"fnal"}); err != nil {
		t.Fatal(err)
	}
	w.SeedEstimator(sys.Est, 3)
	res, err := sys.Materialize(w.Targets...)
	if err != nil {
		t.Fatal(err)
	}
	rep := res[0].Report
	if rep.Completed != len(w.Derivations) {
		t.Fatalf("completed %d of %d", rep.Completed, len(w.Derivations))
	}
	// Several-hundred-node DAG shape and full lineage.
	lin, err := sys.Lineage(w.Targets[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(lin.Steps) < 300 {
		t.Fatalf("lineage steps: %d", len(lin.Steps))
	}
	if errors.Is(err, catalog.ErrNotFound) {
		t.Fatal("unexpected")
	}
	fmt.Println() // keep fmt imported for debugging convenience
}
